//! The group-aware filtering engines (two-stage process, Fig. 2.4).
//!
//! [`GroupEngine`] hosts a group of filters sharing one source. Tuples are
//! pushed in stream order; the engine drives the filters through the first
//! stage (candidate admission), maintains the shared global state (group
//! utilities, regions, decided outputs), runs the configured second-stage
//! algorithm, enforces timely cuts, and emits [`Emission`]s — tuples
//! labelled with the recipient filters, ready for tuple-level multicast
//! (Fig. 1.2).
//!
//! The primary output path is sink-based: [`GroupEngine::push_into`],
//! [`GroupEngine::push_batch`] and [`GroupEngine::finish_into`] write
//! released emissions into any [`EmissionSink`] through a reusable
//! internal scratch buffer, so the steady-state release path performs no
//! per-push `Vec<Emission>` allocation. The engine also implements
//! [`StreamOperator`], the seam pipelines compose over.
//! [`push`](GroupEngine::push) / [`finish`](GroupEngine::finish) /
//! [`run`](GroupEngine::run) remain as thin [`VecSink`]-backed
//! compatibility wrappers.
//!
//! ## The subscription control plane (epochs)
//!
//! The filter group is no longer frozen at build time:
//! [`GroupEngine::add_filter`] / [`GroupEngine::remove_filter`] /
//! [`GroupEngine::update_filter`] queue roster changes that are applied at
//! the next **safe point** — the boundary before the next pushed tuple,
//! where every open candidate set is force-closed, every region completed
//! and everything pending released (exactly what
//! [`finish_into`](GroupEngine::finish_into) does, without ending the
//! stream). Each application starts a new **epoch**:
//!
//! * [`FilterId`]s are stable for the lifetime of the engine — ids are
//!   never reused or renumbered, removal leaves a *vacant slot*, and
//!   recipient [`FilterSet`] labels simply skip vacancies;
//! * retained filters restart from a fresh state, so a run with churn
//!   applied at epoch `E` is **byte-identical** to stopping at `E`,
//!   rebuilding statically with the post-churn roster (see
//!   [`GroupEngineBuilder::filter_at`]) and continuing — the contract
//!   `tests/tests/churn_equivalence.rs` pins across every
//!   `Algorithm` × `OutputStrategy` × parallelism;
//! * [`metrics`](GroupEngine::metrics) covers the current epoch only;
//!   completed epochs are archived in
//!   [`epoch_metrics`](GroupEngine::epoch_metrics) (so a removed filter's
//!   stats survive it) and
//!   [`lifetime_metrics`](GroupEngine::lifetime_metrics) folds them back
//!   together, per-filter counters aligned by id.

mod decide;
#[cfg(test)]
mod tests;

use crate::batch::TupleBatch;
use crate::bitset::FilterSet;
use crate::candidate::{CloseCause, FilterAction, FilterId, TimeCover};
use crate::cuts::{RuntimePredictor, TimeConstraint};
use crate::error::Error;
use crate::filter::{build_filter, ForceCloseOutcome, GroupFilter};
use crate::hitting_set::greedy_hitting_set_over;
use crate::metrics::{EngineMetrics, FilterMetrics};
use crate::plan::{CompiledRoster, EvaluatorTier, FilterPlan, StepActions};
use crate::quality::FilterSpec;
use crate::region::{Region, RegionTracker};
use crate::schema::Schema;
use crate::sink::{EmissionSink, StreamOperator, VecSink};
use crate::snapshot::GroupSnapshot;
use crate::time::Micros;
use crate::tuple::{Tuple, TupleId, TuplePool};
use crate::utility::GroupUtility;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Second-stage algorithm selecting outputs from candidate sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Region-based greedy (Fig. 2.6): accumulate connected candidate sets
    /// into regions and solve a greedy hitting set per closed region.
    /// Best bandwidth, highest latency.
    RegionGreedy,
    /// Per-candidate-set greedy (Fig. 2.10): each filter decides as soon as
    /// its set closes, preferring tuples already chosen by others. The only
    /// algorithm valid for stateful filters.
    PerCandidateSet,
    /// The baseline: every filter independently emits its reference tuples
    /// (no slack exploitation); the union is multicast.
    SelfInterested,
}

/// When decided outputs are handed to the multicaster (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputStrategy {
    /// Emit at region completion — the earliest time that cannot hurt the
    /// solution's optimality (the default).
    Earliest,
    /// Emit as soon as a decision is made (lower latency, may reorder
    /// output relative to region order).
    PerCandidateSet,
    /// Emit every `n` input tuples.
    Batched(u32),
}

/// A decided tuple labelled with the filters that should receive it.
///
/// The payload is the engine pool's shared `Arc<Tuple>` (no copy is made
/// at release time) and the recipient labels are a packed [`FilterSet`],
/// iterated in ascending filter order.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// The tuple to multicast (shared with the engine's intern pool).
    pub tuple: Arc<Tuple>,
    /// Recipient filters.
    pub recipients: FilterSet,
    /// Stream time at which the engine released the tuple.
    pub emitted_at: Micros,
}

impl Emission {
    /// Filtering-stage latency of this emission (release − source stamp).
    pub fn latency(&self) -> Micros {
        self.emitted_at.saturating_sub(self.tuple.timestamp())
    }
}

/// Builder for [`GroupEngine`] (see [`GroupEngine::builder`]).
#[derive(Debug)]
pub struct GroupEngineBuilder {
    schema: Schema,
    specs: Vec<FilterSpec>,
    pinned: Vec<(FilterId, FilterSpec)>,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    constraint: Option<TimeConstraint>,
    predictor_window: usize,
    overestimate_us: f64,
    parallelism: usize,
    tier: EvaluatorTier,
}

impl GroupEngineBuilder {
    /// Adds a filter specification to the group.
    pub fn filter(mut self, spec: FilterSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds several filter specifications.
    pub fn filters<I: IntoIterator<Item = FilterSpec>>(mut self, specs: I) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Adds a filter pinned to an explicit [`FilterId`] slot.
    ///
    /// This is the *static rebuild* counterpart of the dynamic control
    /// plane: after churn a roster may contain vacancies (e.g. ids
    /// `{0, 2, 3}` once filter 1 was removed), and rebuilding that roster
    /// statically must reproduce the same ids so recipient labels — and
    /// therefore the whole emission stream — are byte-identical. Ids not
    /// pinned here are assigned to [`filter`](Self::filter) specs in the
    /// lowest free slots, in insertion order. Pinning the same slot twice
    /// fails at [`build`](Self::build).
    pub fn filter_at(mut self, id: FilterId, spec: FilterSpec) -> Self {
        self.pinned.push((id, spec));
        self
    }

    /// Selects the second-stage algorithm (default
    /// [`Algorithm::RegionGreedy`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the output strategy (default [`OutputStrategy::Earliest`]).
    pub fn output_strategy(mut self, strategy: OutputStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets an explicit group time constraint, enabling timely cuts. When
    /// absent, the minimum of the filters' latency tolerances (if any) is
    /// used.
    pub fn time_constraint(mut self, constraint: TimeConstraint) -> Self {
        self.constraint = Some(constraint);
        self
    }

    /// Configures the greedy run-time predictor (window size and additive
    /// overestimation in microseconds, §3.3).
    pub fn predictor(mut self, window: usize, overestimate_us: f64) -> Self {
        self.predictor_window = window;
        self.overestimate_us = overestimate_us;
        self
    }

    /// Sets the worker-shard count used by the sharded execution path
    /// (default 1). [`build`](Self::build) ignores it — a `GroupEngine` is
    /// always single-threaded — but [`build_sharded`](Self::build_sharded)
    /// and hosts that accept a builder (e.g. `gasf-solar`'s middleware)
    /// honour it when instantiating a
    /// [`ShardedEngine`](crate::shard::ShardedEngine).
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n;
        self
    }

    /// The configured worker-shard count (see
    /// [`parallelism`](Self::parallelism)).
    pub fn configured_parallelism(&self) -> usize {
        self.parallelism.max(1)
    }

    /// Selects the first-stage evaluator tier (default
    /// [`EvaluatorTier::Compiled`]). Both tiers produce byte-identical
    /// output; the interpreted trait-object path is the oracle the
    /// compiled roster is checked against.
    pub fn evaluator(mut self, tier: EvaluatorTier) -> Self {
        self.tier = tier;
        self
    }

    /// The configured evaluator tier (see [`evaluator`](Self::evaluator)).
    pub fn configured_evaluator(&self) -> EvaluatorTier {
        self.tier
    }

    /// Builds this single group behind the sharded execution path: the
    /// engine runs on a worker thread (fed by a bounded channel) and the
    /// caller thread only validates ordering and merges emissions, so
    /// filtering overlaps with whatever the sink does downstream. Output
    /// is byte-identical to [`build`](Self::build) + the inline path.
    ///
    /// # Errors
    /// Same as [`build`](Self::build).
    pub fn build_sharded(self) -> Result<crate::shard::ShardedEngine, Error> {
        let parallelism = self.configured_parallelism();
        crate::shard::ShardedEngine::builder()
            .parallelism(parallelism)
            .route("group0", self)
            .build()
    }

    /// The stream schema this builder targets.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configured second-stage algorithm.
    pub fn configured_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The safe-point snapshot of the engine this builder *would* build:
    /// a never-fed engine at epoch 0. Restoring it is equivalent to
    /// [`build`](Self::build) — the sharded host builds its initial
    /// engines *and* rebuilds crashed pre-first-checkpoint workers
    /// through exactly this snapshot, so the two paths cannot drift.
    /// Spec validation happens when the snapshot is restored.
    pub(crate) fn initial_snapshot(&self) -> Result<GroupSnapshot, Error> {
        let roster = self.resolve_roster()?;
        let width = roster.last().map_or(0, |(id, _)| id.index() + 1);
        let mut specs: Vec<Option<FilterSpec>> = vec![None; width];
        for (id, spec) in roster {
            specs[id.index()] = Some(spec);
        }
        Ok(GroupSnapshot {
            schema: self.schema.clone(),
            algorithm: self.algorithm,
            strategy: self.strategy,
            constraint: self.constraint,
            predictor_window: self.predictor_window,
            overestimate_us: self.overestimate_us,
            roster: specs,
            next_filter_id: width as u32,
            epoch: 0,
            past_epochs: Vec::new(),
            watermark: Micros::ZERO,
            last_ts: None,
            last_seq: None,
        })
    }

    /// Resolves the roster this builder would instantiate: pinned specs in
    /// their explicit slots, then plain [`filter`](Self::filter) specs in
    /// the lowest free slots, insertion order preserved.
    pub(crate) fn resolve_roster(&self) -> Result<Vec<(FilterId, FilterSpec)>, Error> {
        let mut slots: BTreeMap<u32, FilterSpec> = BTreeMap::new();
        for (id, spec) in &self.pinned {
            if slots.insert(id.0, spec.clone()).is_some() {
                return Err(Error::InvalidConfig {
                    reason: format!("filter slot {id} pinned twice"),
                });
            }
        }
        let mut next = 0u32;
        for spec in &self.specs {
            while slots.contains_key(&next) {
                next += 1;
            }
            slots.insert(next, spec.clone());
            next += 1;
        }
        if slots.is_empty() {
            return Err(Error::InvalidConfig {
                reason: "a group needs at least one filter".into(),
            });
        }
        Ok(slots.into_iter().map(|(i, s)| (FilterId(i), s)).collect())
    }

    /// Builds the engine.
    ///
    /// # Errors
    /// * [`Error::InvalidConfig`] if the group is empty, a slot is pinned
    ///   twice, or stateful filters are combined with the region-based
    ///   algorithm.
    /// * [`Error::InvalidSpec`] / [`Error::UnknownAttribute`] from filter
    ///   instantiation.
    pub fn build(self) -> Result<GroupEngine, Error> {
        let roster = self.resolve_roster()?;
        let width = roster.last().map_or(0, |(id, _)| id.index() + 1);
        let mut slots: Vec<Option<FilterSlot>> = Vec::new();
        slots.resize_with(width, || None);
        for (id, spec) in roster {
            let filter = match self.tier {
                EvaluatorTier::Interpreted => {
                    Some(instantiate_filter(&spec, id, &self.schema, self.algorithm)?)
                }
                // Compilation below validates every spec with the same
                // errors in the same (ascending-slot) order.
                EvaluatorTier::Compiled => None,
            };
            slots[id.index()] = Some(FilterSlot { spec, filter });
        }
        let compiled = match self.tier {
            EvaluatorTier::Compiled => Some(compile_slots(&slots, &self.schema, self.algorithm)?),
            EvaluatorTier::Interpreted => None,
        };
        let constraint = effective_constraint(self.constraint, &slots);
        Ok(GroupEngine {
            schema: self.schema,
            slots,
            tier: self.tier,
            compiled,
            step: StepActions::default(),
            algorithm: self.algorithm,
            strategy: self.strategy,
            explicit_constraint: self.constraint,
            constraint,
            predictor_window: self.predictor_window,
            overestimate_us: self.overestimate_us,
            predictor: RuntimePredictor::with_window(self.predictor_window, self.overestimate_us),
            utility: GroupUtility::new(),
            tracker: RegionTracker::new(),
            cover_buf: Vec::new(),
            pool: TuplePool::new(),
            pending: BTreeMap::new(),
            releasable: BTreeSet::new(),
            recently_decided: HashSet::new(),
            emitted_ids: HashSet::new(),
            batch_counter: 0,
            watermark: Micros::ZERO,
            max_emitted_id: None,
            last_ts: None,
            last_seq: None,
            finished: false,
            scratch: Vec::new(),
            control_queue: Vec::new(),
            queued_structural: 0,
            next_filter_id: width as u32,
            epoch: 0,
            past_epochs: Vec::new(),
            metrics: EngineMetrics {
                per_filter: vec![FilterMetrics::default(); width],
                ..Default::default()
            },
        })
    }
}

/// Instantiates one filter, enforcing the algorithm/statefulness rules the
/// whole control plane shares (build time, live adds and live updates).
pub(crate) fn instantiate_filter(
    spec: &FilterSpec,
    id: FilterId,
    schema: &Schema,
    algorithm: Algorithm,
) -> Result<Box<dyn GroupFilter>, Error> {
    if spec.is_stateful() && algorithm == Algorithm::RegionGreedy {
        return Err(Error::InvalidConfig {
            reason: format!(
                "filter {id} is stateful; stateful candidate sets require \
                 Algorithm::PerCandidateSet"
            ),
        });
    }
    // Under the self-interested baseline the chosen output *is* the
    // reference, so stateful and stateless bases coincide: build a
    // stateless twin.
    if spec.is_stateful() && algorithm == Algorithm::SelfInterested {
        let mut s = spec.clone();
        if let crate::quality::FilterKind::Delta { dependency, .. } = &mut s.kind {
            *dependency = crate::quality::Dependency::Stateless;
        }
        build_filter(&s, id, schema)
    } else {
        build_filter(spec, id, schema)
    }
}

/// Validates one filter spec against the control-plane rules without
/// instantiating anything: exactly [`instantiate_filter`]'s checks (same
/// errors, same order), shared by the queue-time validation of live adds
/// and updates on both tiers.
pub(crate) fn validate_filter(
    spec: &FilterSpec,
    id: FilterId,
    schema: &Schema,
    algorithm: Algorithm,
) -> Result<(), Error> {
    FilterPlan::lower(spec, id, schema, algorithm).map(|_| ())
}

/// Compiles the occupied slots of a roster into a fused evaluator.
fn compile_slots(
    slots: &[Option<FilterSlot>],
    schema: &Schema,
    algorithm: Algorithm,
) -> Result<CompiledRoster, Error> {
    CompiledRoster::compile(
        slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (FilterId::from_index(i), &s.spec))),
        schema,
        algorithm,
    )
}

/// The group time constraint in effect for a roster: the explicit one, or
/// the minimum of the occupied filters' latency tolerances.
fn effective_constraint(
    explicit: Option<TimeConstraint>,
    slots: &[Option<FilterSlot>],
) -> Option<TimeConstraint> {
    explicit.or_else(|| {
        slots
            .iter()
            .flatten()
            .filter_map(|s| s.spec.latency_tolerance)
            .min()
            .map(TimeConstraint::max_delay)
    })
}

/// One occupied filter slot: the spec it was built from (kept so epochs
/// can rebuild retained filters from scratch) plus — on the interpreted
/// tier only — the live trait object. On the compiled tier the filter's
/// state lives in the engine's [`CompiledRoster`] arenas instead.
#[derive(Debug)]
struct FilterSlot {
    spec: FilterSpec,
    filter: Option<Box<dyn GroupFilter>>,
}

/// A queued roster change, applied at the next safe point.
#[derive(Debug, Clone)]
pub(crate) enum ControlOp {
    /// Install `spec` in the (brand-new) slot `id`.
    Add(FilterId, FilterSpec),
    /// Vacate slot `id`.
    Remove(FilterId),
    /// Replace the spec in slot `id`.
    Update(FilterId, FilterSpec),
}

/// A group-aware stream-filtering engine for one source shared by a group
/// of filters.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug)]
pub struct GroupEngine {
    schema: Schema,
    /// Filter slots indexed by [`FilterId`]; `None` marks a vacancy left
    /// by a removed filter (ids are never reused or renumbered).
    slots: Vec<Option<FilterSlot>>,
    /// Which first-stage evaluator drives the roster.
    tier: EvaluatorTier,
    /// The fused evaluator (compiled tier only); recompiled from the
    /// roster at every epoch boundary.
    compiled: Option<CompiledRoster>,
    /// Reusable per-tuple action buffer for the compiled path.
    step: StepActions,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    /// The constraint the caller set explicitly (kept so the effective
    /// constraint can be recomputed when the roster changes).
    explicit_constraint: Option<TimeConstraint>,
    constraint: Option<TimeConstraint>,
    predictor_window: usize,
    overestimate_us: f64,
    predictor: RuntimePredictor,
    utility: GroupUtility,
    tracker: RegionTracker,
    /// Reusable open-cover buffer for the batch-path region drain.
    cover_buf: Vec<TimeCover>,
    /// Intern pool owning the live tuples that may still be chosen/emitted.
    pool: TuplePool,
    /// Decided but not yet emitted outputs (recipient sets by id).
    pending: BTreeMap<TupleId, FilterSet>,
    /// Pending ids whose region has completed (eligible under `Earliest`).
    releasable: BTreeSet<TupleId>,
    /// Ids chosen in still-incomplete regions (PS heuristic 1).
    recently_decided: HashSet<TupleId>,
    /// Ids ever emitted (distinct-output accounting).
    emitted_ids: HashSet<TupleId>,
    batch_counter: u32,
    /// Stream time up to which every region is complete (the punctuation
    /// value of §3.4).
    watermark: Micros,
    /// Highest id emitted so far (disorder detection).
    max_emitted_id: Option<TupleId>,
    last_ts: Option<Micros>,
    last_seq: Option<u64>,
    finished: bool,
    /// Reusable emission buffer: the release path fills it (reusing the
    /// allocation across pushes), the CPU clock stops, and only then is the
    /// batch handed to the sink — so downstream cost never pollutes engine
    /// CPU metrics and the hot path allocates no `Vec<Emission>`.
    scratch: Vec<Emission>,
    /// Queued roster changes, applied together at the next safe point.
    control_queue: Vec<ControlOp>,
    /// How many queued ops are *structural* (`Add`/`Remove`). While
    /// zero, the projected roster equals the live slots, so single-id
    /// liveness checks are O(1) — the case the shedding ladder leans on
    /// when it queues one `Update` per filter across a huge roster.
    queued_structural: usize,
    /// The next never-used filter id (monotone; ids are never recycled).
    next_filter_id: u32,
    /// Epochs completed so far (bumped by every control-op application).
    epoch: u64,
    /// Archived metrics of completed epochs, oldest first.
    past_epochs: Vec<EngineMetrics>,
    metrics: EngineMetrics,
}

/// Validates that `tuple` extends a stream whose last accepted tuple had
/// `last_ts`/`last_seq`. Shared by the inline ([`GroupEngine::push_into`])
/// and sharded (`crate::shard`) ingest paths so their eager ordering
/// contracts cannot drift apart.
pub(crate) fn validate_stream_order(
    last_ts: Option<Micros>,
    last_seq: Option<u64>,
    tuple: &Tuple,
) -> Result<(), Error> {
    validate_stream_order_at(last_ts, last_seq, tuple.timestamp(), tuple.seq())
}

/// Position form of [`validate_stream_order`], for the columnar path: a
/// [`TupleBatch`] validated its internal contiguity at construction, so
/// only its head row needs checking against the engine frontier.
pub(crate) fn validate_stream_order_at(
    last_ts: Option<Micros>,
    last_seq: Option<u64>,
    ts: Micros,
    seq: u64,
) -> Result<(), Error> {
    if let Some(last) = last_ts {
        // Non-decreasing, not strictly increasing: equal timestamps are
        // legal sensor output and the dense seq check below is the
        // deterministic tiebreak (the reorder buffer's release order).
        if ts < last {
            return Err(Error::OutOfOrder {
                last_us: last.as_micros(),
                got_us: ts.as_micros(),
            });
        }
    }
    if let Some(last) = last_seq {
        if seq != last + 1 {
            return Err(Error::NonContiguousSeq {
                expected: last + 1,
                got: seq,
            });
        }
    }
    Ok(())
}

/// Which pending outputs a release step covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Release {
    /// Everything pending.
    All,
    /// Only ids whose region has completed (the `Earliest` strategy).
    Ready,
}

impl GroupEngine {
    /// Starts building an engine over `schema`.
    pub fn builder(schema: Schema) -> GroupEngineBuilder {
        GroupEngineBuilder {
            schema,
            specs: Vec::new(),
            pinned: Vec::new(),
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            constraint: None,
            predictor_window: RuntimePredictor::DEFAULT_WINDOW,
            overestimate_us: 0.0,
            parallelism: 1,
            tier: EvaluatorTier::default(),
        }
    }

    /// The stream schema this engine was built for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The live filter specifications of the group, in [`FilterId`] order
    /// (vacated slots are skipped; see [`roster`](Self::roster) for the
    /// ids).
    pub fn specs(&self) -> Vec<FilterSpec> {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.spec.clone())
            .collect()
    }

    /// The live roster: `(id, spec)` for every occupied slot, ascending by
    /// id. Queued control ops are *not* reflected until they apply.
    pub fn roster(&self) -> Vec<(FilterId, FilterSpec)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .map(|s| (FilterId::from_index(i), s.spec.clone()))
            })
            .collect()
    }

    /// Number of live filters in the group.
    pub fn group_size(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// The configured second-stage algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The first-stage evaluator tier driving this engine.
    pub fn evaluator_tier(&self) -> EvaluatorTier {
        self.tier
    }

    /// The effective group time constraint, if cuts are enabled.
    pub fn time_constraint(&self) -> Option<TimeConstraint> {
        self.constraint
    }

    /// Metrics accumulated in the **current epoch** (since the last
    /// applied roster change, or since construction). See
    /// [`epoch_metrics`](Self::epoch_metrics) and
    /// [`lifetime_metrics`](Self::lifetime_metrics) for history.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Number of completed epochs (control-op applications so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Archived metrics of completed epochs, oldest first. A filter
    /// removed in epoch `k` keeps its counters in entries `0..=k`.
    pub fn epoch_metrics(&self) -> &[EngineMetrics] {
        &self.past_epochs
    }

    /// Metrics folded over every epoch plus the current one, per-filter
    /// counters aligned by stable [`FilterId`]
    /// ([`EngineMetrics::absorb`]).
    pub fn lifetime_metrics(&self) -> EngineMetrics {
        let mut total = EngineMetrics::default();
        for m in &self.past_epochs {
            total.absorb(m);
        }
        total.absorb(&self.metrics);
        total
    }

    /// Number of queued control ops awaiting the next safe point.
    pub fn pending_control_ops(&self) -> usize {
        self.control_queue.len()
    }

    /// Number of tuples currently interned by the engine (live window +
    /// pending outputs). For well-formed streams this stays bounded by the
    /// current region's extent regardless of stream length — the region
    /// cleanup is what makes the engine usable on unbounded streams.
    pub fn buffered_tuples(&self) -> usize {
        self.pool.len()
    }

    /// Number of tuple payloads materialised from columnar batch rows so
    /// far (see [`TuplePool::materializations`]). Payloads materialise
    /// only at emission, so on the columnar path this stays at the
    /// emission count rather than the input count — the steady-state
    /// no-per-tuple-allocation property pinned by the batch regression
    /// tests.
    pub fn tuple_materializations(&self) -> u64 {
        self.pool.materializations()
    }

    /// The output watermark: the stream time up to which every region has
    /// been decided. Under the per-candidate-set output strategy emissions
    /// may arrive out of order (§3.4); this is the "punctuation" a
    /// downstream operator can use to know when reordering is safe —
    /// every output with a timestamp at or before the watermark has been
    /// released.
    pub fn watermark(&self) -> Micros {
        self.watermark
    }

    /// Consumes the engine, returning the final lifetime metrics (every
    /// epoch folded together; see
    /// [`lifetime_metrics`](Self::lifetime_metrics)).
    pub fn into_metrics(self) -> EngineMetrics {
        self.lifetime_metrics()
    }

    // ------------------------------------------------------------------
    // subscription control plane
    // ------------------------------------------------------------------

    /// Queues a new filter for the group, returning its stable
    /// [`FilterId`] immediately. The filter joins at the next safe point
    /// (before the next pushed tuple); until then it sees no input.
    ///
    /// # Errors
    /// [`Error::Finished`] after the stream ended, or any spec/algorithm
    /// validation error ([`GroupEngineBuilder::build`]'s rules).
    pub fn add_filter(&mut self, spec: FilterSpec) -> Result<FilterId, Error> {
        let id = FilterId(self.next_filter_id);
        self.queue_add_at(id, spec)?;
        Ok(id)
    }

    /// Queues an add into an explicit, never-used slot (the sharded
    /// engine mirrors id assignment on the caller thread and replays it
    /// here).
    pub(crate) fn queue_add_at(&mut self, id: FilterId, spec: FilterSpec) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        if id.0 < self.next_filter_id {
            return Err(Error::InvalidConfig {
                reason: format!("filter id {id} was already assigned; ids are never reused"),
            });
        }
        validate_filter(&spec, id, &self.schema, self.algorithm)?;
        self.next_filter_id = id.0 + 1;
        self.control_queue.push(ControlOp::Add(id, spec));
        self.queued_structural += 1;
        Ok(())
    }

    /// Queues the removal of a filter. Applied at the next safe point: the
    /// filter's open candidate set is closed with everything else at the
    /// epoch boundary, its pending outputs are released, its slot becomes
    /// a vacancy and its metrics survive in
    /// [`epoch_metrics`](Self::epoch_metrics).
    ///
    /// # Errors
    /// [`Error::Finished`], [`Error::UnknownFilter`] for ids that are not
    /// live (counting queued ops), or [`Error::InvalidConfig`] when the
    /// removal would leave the group empty.
    pub fn remove_filter(&mut self, id: FilterId) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        let live = self.projected_roster();
        if !live.contains(&id.0) {
            return Err(Error::UnknownFilter { id });
        }
        if live.len() == 1 {
            return Err(Error::InvalidConfig {
                reason: format!("removing {id} would leave the group empty"),
            });
        }
        self.control_queue.push(ControlOp::Remove(id));
        self.queued_structural += 1;
        Ok(())
    }

    /// Queues a spec replacement for a live filter (same [`FilterId`], new
    /// quality requirement). At the safe point the filter restarts from a
    /// fresh state under the new spec.
    ///
    /// # Errors
    /// [`Error::Finished`], [`Error::UnknownFilter`], or spec validation
    /// errors.
    pub fn update_filter(&mut self, id: FilterId, spec: FilterSpec) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        if !self.projected_live(id) {
            return Err(Error::UnknownFilter { id });
        }
        validate_filter(&spec, id, &self.schema, self.algorithm)?;
        self.control_queue.push(ControlOp::Update(id, spec));
        Ok(())
    }

    /// Whether `id` will be live once the queued ops apply. O(1) while
    /// no structural op is queued; otherwise one pass over the queue
    /// (last structural op on the id wins, matching apply order).
    fn projected_live(&self, id: FilterId) -> bool {
        let mut live = self.slots.get(id.index()).is_some_and(Option::is_some);
        if self.queued_structural == 0 {
            return live;
        }
        for op in &self.control_queue {
            match op {
                ControlOp::Add(i, _) if i.0 == id.0 => live = true,
                ControlOp::Remove(i) if i.0 == id.0 => live = false,
                _ => {}
            }
        }
        live
    }

    /// The roster as it will look once the queued ops apply.
    fn projected_roster(&self) -> BTreeSet<u32> {
        let mut live: BTreeSet<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i as u32)
            .collect();
        for op in &self.control_queue {
            match op {
                ControlOp::Add(id, _) => {
                    live.insert(id.0);
                }
                ControlOp::Remove(id) => {
                    live.remove(&id.0);
                }
                ControlOp::Update(..) => {}
            }
        }
        live
    }

    /// Crosses the epoch boundary: drains all open state (exactly like
    /// [`finish_into`](Self::finish_into), without ending the stream),
    /// hands the tail to the sink, archives the epoch's metrics and
    /// applies the queued roster changes. Retained filters restart fresh,
    /// so the continuation is byte-identical to a static rebuild with the
    /// post-churn roster.
    fn apply_control_ops<S: EmissionSink>(&mut self, sink: &mut S) {
        self.apply_control_ops_to_scratch();
        self.drain_scratch(sink);
    }

    /// [`apply_control_ops`](Self::apply_control_ops) minus the sink
    /// handoff: the boundary tail stays staged in the scratch buffer, so
    /// the per-step columnar path can attribute it to the step whose push
    /// crossed the boundary.
    fn apply_control_ops_to_scratch(&mut self) {
        let start = Instant::now();
        let now = self.last_ts.unwrap_or(Micros::ZERO);
        self.drain_open_state(now);
        self.metrics.cpu += start.elapsed();
        self.advance_epoch();
    }

    /// Applies the queued ops to the roster and resets all per-epoch
    /// state. Must only run with the engine fully drained.
    fn advance_epoch(&mut self) {
        debug_assert!(self.pending.is_empty() && self.releasable.is_empty());
        // The retained specs are moved, not cloned: the old slots are dead
        // (the boundary drained every filter) and the specs come right
        // back in the rebuilt slots.
        let mut specs: Vec<Option<FilterSpec>> = std::mem::take(&mut self.slots)
            .into_iter()
            .map(|s| s.map(|s| s.spec))
            .collect();
        self.queued_structural = 0;
        for op in std::mem::take(&mut self.control_queue) {
            match op {
                ControlOp::Add(id, spec) => {
                    if id.index() >= specs.len() {
                        specs.resize(id.index() + 1, None);
                    }
                    specs[id.index()] = Some(spec);
                }
                ControlOp::Remove(id) => specs[id.index()] = None,
                ControlOp::Update(id, spec) => specs[id.index()] = Some(spec),
            }
        }
        self.slots = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                spec.map(|spec| {
                    let filter = match self.tier {
                        EvaluatorTier::Interpreted => Some(
                            instantiate_filter(
                                &spec,
                                FilterId::from_index(i),
                                &self.schema,
                                self.algorithm,
                            )
                            .expect("control ops are validated when queued"),
                        ),
                        EvaluatorTier::Compiled => None,
                    };
                    FilterSlot { spec, filter }
                })
            })
            .collect();
        // Safe-point recompile: compilation is a pure function of the
        // post-churn roster (vacancy holes preserved).
        self.compiled = match self.tier {
            EvaluatorTier::Compiled => Some(
                compile_slots(&self.slots, &self.schema, self.algorithm)
                    .expect("control ops are validated when queued"),
            ),
            EvaluatorTier::Interpreted => None,
        };
        self.constraint = effective_constraint(self.explicit_constraint, &self.slots);
        // Per-epoch state restarts exactly like a freshly built engine
        // (the determinism contract depends on it). The pool is already
        // empty — the drain released everything — and the watermark is
        // monotone stream time, so both carry over.
        self.predictor = RuntimePredictor::with_window(self.predictor_window, self.overestimate_us);
        self.utility = GroupUtility::new();
        self.tracker = RegionTracker::new();
        self.recently_decided.clear();
        self.emitted_ids.clear();
        self.batch_counter = 0;
        self.max_emitted_id = None;
        let width = self.slots.len();
        let done = std::mem::replace(
            &mut self.metrics,
            EngineMetrics {
                per_filter: vec![FilterMetrics::default(); width],
                ..Default::default()
            },
        );
        self.past_epochs.push(done);
        self.epoch += 1;
    }

    // ------------------------------------------------------------------
    // checkpoint / restore
    // ------------------------------------------------------------------

    /// Takes a safe-point snapshot: crosses an epoch boundary — draining
    /// every open candidate set, completing every region and handing the
    /// boundary tail to `sink`, exactly like a queued control op with an
    /// empty op set — then captures the durable state
    /// ([`GroupSnapshot`]): roster (with vacancy holes), epoch counter,
    /// per-epoch metrics archive, stream position and configuration.
    /// Queued control ops apply at this boundary (it *is* the next safe
    /// point) and are reflected in the snapshot.
    ///
    /// Because the boundary restarts retained filters fresh, the
    /// continuation after a snapshot is byte-identical whether it runs on
    /// this engine or on [`restore`](Self::restore)d replica fed the same
    /// suffix — the recovery determinism contract pinned by
    /// `tests/tests/recovery_equivalence.rs`.
    ///
    /// # Errors
    /// Returns [`Error::Finished`] after the stream ended (a finished
    /// engine has no further safe point; its durable state is its final
    /// metrics, which [`into_metrics`](Self::into_metrics) already
    /// serves).
    pub fn snapshot_into<S: EmissionSink>(&mut self, sink: &mut S) -> Result<GroupSnapshot, Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        self.apply_control_ops(sink);
        Ok(GroupSnapshot {
            schema: self.schema.clone(),
            algorithm: self.algorithm,
            strategy: self.strategy,
            constraint: self.explicit_constraint,
            predictor_window: self.predictor_window,
            overestimate_us: self.overestimate_us,
            roster: self
                .slots
                .iter()
                .map(|s| s.as_ref().map(|s| s.spec.clone()))
                .collect(),
            next_filter_id: self.next_filter_id,
            epoch: self.epoch,
            past_epochs: self.past_epochs.clone(),
            watermark: self.watermark,
            last_ts: self.last_ts,
            last_seq: self.last_seq,
        })
    }

    /// Takes a safe-point snapshot, returning it together with the
    /// boundary-drain emissions.
    ///
    /// Compatibility wrapper over [`snapshot_into`](Self::snapshot_into)
    /// (the emissions are collected through a [`VecSink`]).
    ///
    /// # Errors
    /// Same as [`snapshot_into`](Self::snapshot_into).
    pub fn snapshot(&mut self) -> Result<(GroupSnapshot, Vec<Emission>), Error> {
        let mut out = VecSink::new();
        let snap = self.snapshot_into(&mut out)?;
        Ok((snap, out.into_vec()))
    }

    /// Rebuilds an engine from a safe-point snapshot. The restored engine
    /// is state-equivalent to the engine that took the snapshot at the
    /// moment the boundary passed: same roster (ids, vacancies and the
    /// never-reused id frontier included), same epoch counter and metrics
    /// archive, same stream-order frontier — so feeding it the
    /// post-checkpoint suffix reproduces the original run byte for byte.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for a snapshot without live filters, or
    /// any filter-instantiation error ([`GroupEngineBuilder::build`]'s
    /// rules).
    pub fn restore(snap: &GroupSnapshot) -> Result<GroupEngine, Error> {
        GroupEngine::restore_with_tier(snap, EvaluatorTier::default())
    }

    /// [`restore`](Self::restore) with an explicit evaluator tier.
    ///
    /// Snapshots carry no evaluator state at all (the safe-point boundary
    /// drains everything, and compilation is a pure function of the
    /// roster), so any snapshot restores onto either tier — the tier is a
    /// property of the replica, not of the checkpoint.
    ///
    /// # Errors
    /// Same as [`restore`](Self::restore).
    pub fn restore_with_tier(
        snap: &GroupSnapshot,
        tier: EvaluatorTier,
    ) -> Result<GroupEngine, Error> {
        if !snap.roster.iter().any(Option::is_some) {
            return Err(Error::InvalidConfig {
                reason: "snapshot holds no live filter".into(),
            });
        }
        let width = snap.roster.len();
        let mut slots: Vec<Option<FilterSlot>> = Vec::with_capacity(width);
        for (i, spec) in snap.roster.iter().enumerate() {
            slots.push(match spec {
                Some(spec) => {
                    let filter = match tier {
                        EvaluatorTier::Interpreted => Some(instantiate_filter(
                            spec,
                            FilterId::from_index(i),
                            &snap.schema,
                            snap.algorithm,
                        )?),
                        EvaluatorTier::Compiled => None,
                    };
                    Some(FilterSlot {
                        spec: spec.clone(),
                        filter,
                    })
                }
                None => None,
            });
        }
        let compiled = match tier {
            EvaluatorTier::Compiled => Some(compile_slots(&slots, &snap.schema, snap.algorithm)?),
            EvaluatorTier::Interpreted => None,
        };
        let constraint = effective_constraint(snap.constraint, &slots);
        Ok(GroupEngine {
            schema: snap.schema.clone(),
            slots,
            tier,
            compiled,
            step: StepActions::default(),
            algorithm: snap.algorithm,
            strategy: snap.strategy,
            explicit_constraint: snap.constraint,
            constraint,
            predictor_window: snap.predictor_window,
            overestimate_us: snap.overestimate_us,
            predictor: RuntimePredictor::with_window(snap.predictor_window, snap.overestimate_us),
            utility: GroupUtility::new(),
            tracker: RegionTracker::new(),
            cover_buf: Vec::new(),
            pool: TuplePool::new(),
            pending: BTreeMap::new(),
            releasable: BTreeSet::new(),
            recently_decided: HashSet::new(),
            emitted_ids: HashSet::new(),
            batch_counter: 0,
            watermark: snap.watermark,
            max_emitted_id: None,
            last_ts: snap.last_ts,
            last_seq: snap.last_seq,
            finished: false,
            scratch: Vec::new(),
            control_queue: Vec::new(),
            queued_structural: 0,
            next_filter_id: snap.next_filter_id,
            epoch: snap.epoch,
            past_epochs: snap.past_epochs.clone(),
            metrics: EngineMetrics {
                per_filter: vec![FilterMetrics::default(); width],
                ..Default::default()
            },
        })
    }

    /// Feeds the next stream tuple, writing the emissions released by this
    /// step (possibly none) into `sink`.
    ///
    /// This is the primary, allocation-free ingest path: emissions are
    /// staged in a reusable scratch buffer and handed to the sink as one
    /// [`accept_batch`](EmissionSink::accept_batch) call after the engine's
    /// CPU clock stops.
    ///
    /// # Errors
    /// * [`Error::Finished`] after [`finish_into`](Self::finish_into),
    /// * [`Error::OutOfOrder`] / [`Error::NonContiguousSeq`] for ordering
    ///   violations,
    /// * [`Error::MissingValue`] when the tuple lacks an attribute a filter
    ///   needs.
    pub fn push_into<S: EmissionSink>(&mut self, tuple: Tuple, sink: &mut S) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        // Ordering is validated *before* the safe point: a rejected tuple
        // must not advance the epoch (the queued ops stay queued and apply
        // on the next accepted tuple's boundary instead).
        validate_stream_order(self.last_ts, self.last_seq, &tuple)?;
        // Safe point: queued roster changes apply on the boundary before
        // this tuple (draining the previous epoch's tail into the sink).
        if !self.control_queue.is_empty() {
            self.apply_control_ops(sink);
        }
        let start = Instant::now();
        let now = tuple.timestamp();
        self.last_ts = Some(now);
        self.last_seq = Some(tuple.seq());
        self.metrics.input_tuples += 1;
        // Intern once: the pool owns the payload, everything downstream
        // carries the id.
        let (id, tuple) = self.pool.intern(tuple);

        // Per-filter timely cuts (PS+C) are checked *before* admitting the
        // new tuple: "admitting a new tuple will likely violate the time
        // constraint" (§3.3, Fig. 3.5).
        if self.algorithm == Algorithm::PerCandidateSet {
            self.per_filter_cuts(now);
        }

        // First stage: candidate admission (vacant slots are skipped).
        // The compiled tier runs the whole roster in one fused pass and
        // replays the recorded actions; the interpreted tier is the
        // original one-virtual-call-per-filter loop. Both produce
        // byte-identical actions in ascending slot order.
        if self.compiled.is_some() {
            let mut step = std::mem::take(&mut self.step);
            let result = self
                .compiled
                .as_mut()
                .expect("compiled tier checked above")
                .process_tuple(&tuple, &mut step);
            match result {
                Ok(()) => {
                    self.apply_step(id, now, &mut step);
                    self.step = step;
                }
                Err(e) => {
                    self.step = step;
                    return Err(e);
                }
            }
        } else {
            for i in 0..self.slots.len() {
                let Some(slot) = self.slots[i].as_mut() else {
                    continue;
                };
                let action = slot
                    .filter
                    .as_mut()
                    .expect("interpreted tier holds filter objects")
                    .process(&tuple)?;
                self.apply_action(i, id, now, action);
            }
        }

        // Group timely cut (RG+C) is checked after the admission loop
        // (Fig. 3.3): if the region span plus the predicted greedy run time
        // would exceed the constraint, force-close everything now.
        if self.algorithm == Algorithm::RegionGreedy {
            self.maybe_cut_all(now);
        }

        // Second stage: solve/complete any regions that became ready.
        self.drain_regions(now);

        self.flush_to_scratch(now);
        self.maybe_drop(id);
        self.metrics.cpu += start.elapsed();
        self.drain_scratch(sink);
        Ok(())
    }

    /// Ends the stream: force-closes all open candidate sets, completes the
    /// remaining regions, writes everything still pending into `sink` and
    /// calls [`flush`](EmissionSink::flush) on it.
    ///
    /// # Errors
    /// Returns [`Error::Finished`] if called twice.
    pub fn finish_into<S: EmissionSink>(&mut self, sink: &mut S) -> Result<(), Error> {
        let start = Instant::now();
        if self.finished {
            return Err(Error::Finished);
        }
        self.finished = true;
        // Control ops still queued at end-of-stream never apply: the
        // stream has no further safe point (a rebuilt roster would close
        // immediately without seeing input anyway).
        self.control_queue.clear();
        self.queued_structural = 0;
        let now = self.last_ts.unwrap_or(Micros::ZERO);
        self.drain_open_state(now);
        self.metrics.cpu += start.elapsed();
        self.drain_scratch(sink);
        sink.flush();
        Ok(())
    }

    /// Feeds a batch of tuples into `sink` without per-tuple caller
    /// dispatch — the slice-friendly entry point for sources and the bench
    /// harness. The stream stays open; call
    /// [`finish_into`](Self::finish_into) to end it.
    ///
    /// # Errors
    /// Stops at (and returns) the first tuple that fails, like
    /// [`push_into`](Self::push_into).
    pub fn push_batch<S: EmissionSink>(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        sink: &mut S,
    ) -> Result<(), Error> {
        for t in tuples {
            self.push_into(t, sink)?;
        }
        Ok(())
    }

    /// Feeds a columnar [`TupleBatch`] through the batch-native hot path,
    /// writing everything the batch releases into `sink`.
    ///
    /// Byte-identical to [`push_into`](Self::push_into) on each
    /// materialised row (pinned by `tests/tests/batch_equivalence.rs`),
    /// but evaluated column-at-a-time: the compiled roster derives every
    /// CSE key class over whole columns first, rows are interned lazily
    /// (payloads materialise only if emitted), and each row's fused pass
    /// drops its admission mask into the existing bitset machinery with
    /// one bulk utility probe. Queued control ops apply at the boundary
    /// before the batch — a batch is never split by a safe point.
    ///
    /// On the interpreted tier the batch is simply replayed row by row
    /// through the reference path. A row whose key derivation fails (a
    /// missing value) is also delegated to the reference path, which
    /// reproduces the exact per-tuple error and partial state.
    ///
    /// # Errors
    /// Same contract as [`push_into`](Self::push_into), plus
    /// [`Error::SchemaMismatch`] when the batch width differs from the
    /// engine schema.
    pub fn push_batch_columnar<S: EmissionSink>(
        &mut self,
        batch: &Arc<TupleBatch>,
        sink: &mut S,
    ) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.validate_batch_head(batch)?;
        if !self.control_queue.is_empty() {
            self.apply_control_ops(sink);
        }
        let ok = if self.compiled.is_some() {
            let n = self.columnar_rows(batch, |_| {});
            self.drain_scratch(sink);
            n
        } else {
            0
        };
        for r in ok..batch.rows() {
            self.push_into(batch.materialize_row(r), sink)?;
        }
        Ok(())
    }

    /// Sharded-worker form of
    /// [`push_batch_columnar`](Self::push_batch_columnar): pushes each
    /// row's released emissions as its own entry of `out`, so the merge
    /// layer keeps its per-step `(input step, route)` ordering across
    /// routes that batch at different phases. Emissions from a safe-point
    /// boundary crossed by this batch land in the first row's entry —
    /// exactly where the per-tuple path would drain them.
    ///
    /// On error, `out` holds the steps completed before the failing row
    /// (the failing row contributes no entry).
    pub(crate) fn push_batch_columnar_steps(
        &mut self,
        batch: &Arc<TupleBatch>,
        out: &mut Vec<Vec<Emission>>,
    ) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.validate_batch_head(batch)?;
        if !self.control_queue.is_empty() {
            self.apply_control_ops_to_scratch();
        }
        let ok = if self.compiled.is_some() {
            self.columnar_rows(batch, |scratch| out.push(std::mem::take(scratch)))
        } else {
            0
        };
        for r in ok..batch.rows() {
            let mut sink = VecSink::new();
            let result = self.push_into(batch.materialize_row(r), &mut sink);
            let step = sink.into_vec();
            match result {
                Ok(()) => out.push(step),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Head-of-batch admission checks: width against the engine schema,
    /// stream order of row 0 against the engine frontier. Rows past the
    /// head were validated by the batch constructor (contiguous seqs,
    /// non-decreasing timestamps), so no per-row check remains.
    fn validate_batch_head(&self, batch: &TupleBatch) -> Result<(), Error> {
        if batch.schema().len() != self.schema.len() {
            return Err(Error::SchemaMismatch {
                expected: self.schema.len(),
                actual: batch.schema().len(),
            });
        }
        validate_stream_order_at(
            self.last_ts,
            self.last_seq,
            batch.timestamp(0),
            batch.seq(0),
        )
    }

    /// The columnar core loop (compiled tier only): derive key columns
    /// for the derivable prefix, bulk-intern those rows, then run the
    /// fused second stage row by row over the pre-derived columns.
    /// `per_row` observes the scratch buffer after every row — a no-op
    /// for whole-batch sinks, a move for the per-step sharded form.
    /// Returns the number of rows consumed.
    fn columnar_rows(
        &mut self,
        batch: &Arc<TupleBatch>,
        mut per_row: impl FnMut(&mut Vec<Emission>),
    ) -> usize {
        let start = Instant::now();
        let ok = self
            .compiled
            .as_mut()
            .expect("columnar rows run on the compiled tier")
            .derive_batch(batch);
        self.pool.intern_rows(batch, ok);
        for r in 0..ok {
            let now = batch.timestamp(r);
            let id = TupleId::from_seq(batch.seq(r));
            self.last_ts = Some(now);
            self.last_seq = Some(batch.seq(r));
            self.metrics.input_tuples += 1;
            if self.algorithm == Algorithm::PerCandidateSet {
                self.per_filter_cuts(now);
            }
            let mut step = std::mem::take(&mut self.step);
            self.compiled
                .as_mut()
                .expect("columnar rows run on the compiled tier")
                .evaluate_row(r, id, now, &mut step);
            self.apply_step_columnar(id, now, &mut step);
            self.step = step;
            if self.algorithm == Algorithm::RegionGreedy {
                self.maybe_cut_all(now);
            }
            self.drain_regions_columnar(now);
            self.flush_to_scratch(now);
            self.maybe_drop(id);
            per_row(&mut self.scratch);
        }
        self.metrics.cpu += start.elapsed();
        ok
    }

    /// Runs an entire stream through the engine into `sink`
    /// ([`push_batch`](Self::push_batch) followed by
    /// [`finish_into`](Self::finish_into)).
    ///
    /// # Errors
    /// Propagates any push/finish error.
    pub fn run_into<S: EmissionSink>(
        &mut self,
        stream: impl IntoIterator<Item = Tuple>,
        sink: &mut S,
    ) -> Result<(), Error> {
        self.push_batch(stream, sink)?;
        self.finish_into(sink)
    }

    /// Feeds the next stream tuple; returns the emissions released by this
    /// step (possibly empty).
    ///
    /// Compatibility wrapper over [`push_into`](Self::push_into) — it
    /// clones every emission into a fresh `Vec` via [`VecSink`]. Prefer the
    /// sink path on hot paths.
    ///
    /// # Errors
    /// Same as [`push_into`](Self::push_into).
    pub fn push(&mut self, tuple: Tuple) -> Result<Vec<Emission>, Error> {
        let mut out = VecSink::new();
        self.push_into(tuple, &mut out)?;
        Ok(out.into_vec())
    }

    /// Ends the stream, returning everything still pending.
    ///
    /// Compatibility wrapper over [`finish_into`](Self::finish_into).
    ///
    /// # Errors
    /// Returns [`Error::Finished`] if called twice.
    pub fn finish(&mut self) -> Result<Vec<Emission>, Error> {
        let mut out = VecSink::new();
        self.finish_into(&mut out)?;
        Ok(out.into_vec())
    }

    /// Runs an entire stream through the engine, returning all emissions.
    ///
    /// Compatibility wrapper over [`run_into`](Self::run_into).
    ///
    /// # Errors
    /// Propagates any [`push`](Self::push)/[`finish`](Self::finish) error.
    pub fn run<I: IntoIterator<Item = Tuple>>(
        &mut self,
        stream: I,
    ) -> Result<Vec<Emission>, Error> {
        let mut out = VecSink::new();
        self.run_into(stream, &mut out)?;
        Ok(out.into_vec())
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Force-closes every open candidate set, completes the remaining
    /// regions and stages everything pending into the scratch buffer —
    /// the shared tail-drain of [`finish_into`](Self::finish_into) and
    /// the epoch boundary.
    fn drain_open_state(&mut self, now: Micros) {
        for i in 0..self.slots.len() {
            if self.slots[i].is_none() {
                continue;
            }
            let outcome = self.force_close_slot(i, CloseCause::EndOfStream);
            self.handle_force_outcome(i, now, outcome);
        }
        for region in self.tracker.drain_all() {
            self.complete_region(region, now);
        }
        self.release_to_scratch(now, Release::All);
    }

    fn per_filter_cuts(&mut self, now: Micros) {
        for i in 0..self.slots.len() {
            let Some(slot) = self.slots[i].as_ref() else {
                continue;
            };
            let budget = slot
                .spec
                .latency_tolerance
                .or(self.constraint.map(|c| c.max_delay));
            let (Some(budget), Some(cover)) = (budget, self.open_cover_of(i)) else {
                continue;
            };
            if now.saturating_sub(cover.min) >= budget {
                let outcome = self.force_close_slot(i, CloseCause::Cut);
                self.handle_force_outcome(i, now, outcome);
            }
        }
    }

    fn cut_all(&mut self, now: Micros) {
        for i in 0..self.slots.len() {
            if self.slots[i].is_none() {
                continue;
            }
            let outcome = self.force_close_slot(i, CloseCause::Cut);
            self.handle_force_outcome(i, now, outcome);
        }
    }

    fn handle_force_outcome(&mut self, i: usize, now: Micros, outcome: ForceCloseOutcome) {
        for id in outcome.dismissed {
            self.metrics.per_filter[i].dismissed += 1;
            self.utility.decrement(id);
            self.maybe_drop(id);
        }
        if let Some(set) = outcome.closed {
            self.handle_closed_set(i, now, set);
        }
    }

    /// Replays one fused-pass result through the same per-filter
    /// bookkeeping the interpreted loop uses, in the same ascending slot
    /// order. Untouched slots are provably no-ops
    /// ([`FilterAction::none`] leaves every engine structure unchanged),
    /// so only the touched bits are visited.
    fn apply_step(&mut self, id: TupleId, now: Micros, step: &mut StepActions) {
        let mut events = std::mem::take(&mut step.events);
        let mut next = 0usize;
        for fid in step.touched.iter() {
            let i = fid.index();
            let mut action = FilterAction {
                admitted: step.admitted.contains(fid),
                reference: step.references.contains(fid),
                ..FilterAction::none()
            };
            if let Some((slot, ev)) = events.get_mut(next) {
                if *slot as usize == i {
                    action.dismissed = std::mem::take(&mut ev.dismissed);
                    action.closed = ev.closed.take();
                    next += 1;
                }
            }
            self.apply_action(i, id, now, action);
        }
        debug_assert_eq!(next, events.len(), "event for an untouched slot");
        events.clear();
        step.events = events; // hand the allocation back for reuse
    }

    /// Columnar form of [`apply_step`](Self::apply_step): the admission
    /// mask's popcount lands on the new tuple as one bulk utility probe,
    /// references follow as a block scan, and only the (rare) events walk
    /// slot by slot. Byte-identical to the per-slot replay because a
    /// step's closed sets and dismissals never involve the current tuple
    /// (window seal precedes push, the delta vicinity seal excludes the
    /// current tuple, and dismissals prune previously admitted ids), so
    /// hoisting its admissions and references commutes with the events —
    /// which keep their ascending slot order, preserving the
    /// dismissal-before-decision interleaving that group utilities see.
    fn apply_step_columnar(&mut self, id: TupleId, now: Micros, step: &mut StepActions) {
        let mut admissions = 0u32;
        for fid in step.admitted.iter() {
            self.metrics.per_filter[fid.index()].admitted += 1;
            admissions += 1;
        }
        self.utility.increment_by(id, admissions);
        for fid in step.references.iter() {
            let i = fid.index();
            self.metrics.per_filter[i].references += 1;
            if self.algorithm == Algorithm::SelfInterested && self.si_emits_at_reference(i) {
                self.enqueue(id, fid);
                self.metrics.per_filter[i].chosen += 1;
            }
        }
        let mut events = std::mem::take(&mut step.events);
        for (slot, ev) in &mut events {
            let i = *slot as usize;
            for d in std::mem::take(&mut ev.dismissed) {
                self.metrics.per_filter[i].dismissed += 1;
                self.utility.decrement(d);
                self.maybe_drop(d);
            }
            if let Some(set) = ev.closed.take() {
                self.handle_closed_set(i, now, set);
            }
        }
        events.clear();
        step.events = events; // hand the allocation back for reuse
    }

    fn apply_action(&mut self, i: usize, id: TupleId, now: Micros, action: FilterAction) {
        if action.reference {
            self.metrics.per_filter[i].references += 1;
            if self.algorithm == Algorithm::SelfInterested && self.si_emits_at_reference(i) {
                self.enqueue(id, FilterId::from_index(i));
                self.metrics.per_filter[i].chosen += 1;
            }
        }
        for d in action.dismissed {
            self.metrics.per_filter[i].dismissed += 1;
            self.utility.decrement(d);
            self.maybe_drop(d);
        }
        if action.admitted {
            self.metrics.per_filter[i].admitted += 1;
            self.utility.increment(id);
        }
        if let Some(set) = action.closed {
            self.handle_closed_set(i, now, set);
        }
    }

    fn handle_closed_set(&mut self, i: usize, now: Micros, set: crate::candidate::ClosedSet) {
        self.metrics.per_filter[i].sets_closed += 1;
        if set.cause == CloseCause::Cut {
            self.metrics.per_filter[i].sets_cut += 1;
        }
        match self.algorithm {
            Algorithm::SelfInterested => {
                if !self.si_emits_at_reference(i) {
                    for &id in &set.si_choice {
                        self.enqueue(id, FilterId::from_index(i));
                        self.metrics.per_filter[i].chosen += 1;
                    }
                }
                for c in &set.candidates {
                    self.utility.decrement(c.id);
                }
                for c in &set.candidates {
                    self.maybe_drop(c.id);
                }
            }
            Algorithm::PerCandidateSet => {
                let chosen = decide::decide_outputs(&set, &self.utility, &self.recently_decided);
                self.metrics.per_filter[i].chosen += chosen.len() as u64;
                if self.slot_is_stateful(i) {
                    if let Some(&first) = chosen.first() {
                        let key = set
                            .candidates
                            .iter()
                            .find(|c| c.id == first)
                            .map(|c| c.key)
                            .unwrap_or_default();
                        self.notify_output_chosen(i, first, key);
                    }
                }
                for &id in &chosen {
                    self.enqueue(id, set.filter);
                    self.recently_decided.insert(id);
                }
                for c in &set.candidates {
                    self.utility.decrement(c.id);
                }
                let _ = now;
                self.tracker.add(set);
            }
            Algorithm::RegionGreedy => {
                self.tracker.add(set);
            }
        }
    }

    /// The live trait object in slot `i` (interpreted tier only; panics
    /// on vacancies — callers only reach here for ids that produced an
    /// event this epoch).
    fn slot_filter(&self, i: usize) -> &dyn GroupFilter {
        self.slots[i]
            .as_ref()
            .expect("events only come from occupied slots")
            .filter
            .as_ref()
            .expect("interpreted tier holds filter objects")
            .as_ref()
    }

    // ------------------------------------------------------------------
    // tier dispatch: each per-slot query/command goes to the compiled
    // arenas or to the slot's trait object, whichever tier is live
    // ------------------------------------------------------------------

    fn si_emits_at_reference(&self, i: usize) -> bool {
        match &self.compiled {
            Some(c) => c.si_emits_at_reference(i),
            None => self.slot_filter(i).si_emits_at_reference(),
        }
    }

    fn slot_is_stateful(&self, i: usize) -> bool {
        match &self.compiled {
            Some(c) => c.is_stateful(i),
            None => self.slot_filter(i).is_stateful(),
        }
    }

    fn notify_output_chosen(&mut self, i: usize, first: TupleId, key: f64) {
        match &mut self.compiled {
            Some(c) => c.output_chosen(i, key),
            None => self.slots[i]
                .as_mut()
                .expect("closed sets come from occupied slots")
                .filter
                .as_mut()
                .expect("interpreted tier holds filter objects")
                .output_chosen(first, key),
        }
    }

    fn force_close_slot(&mut self, i: usize, cause: CloseCause) -> ForceCloseOutcome {
        match &mut self.compiled {
            Some(c) => c.force_close(i, cause),
            None => match self.slots[i].as_mut() {
                Some(slot) => slot
                    .filter
                    .as_mut()
                    .expect("interpreted tier holds filter objects")
                    .force_close(cause),
                None => ForceCloseOutcome::default(),
            },
        }
    }

    fn open_cover_of(&self, i: usize) -> Option<TimeCover> {
        match &self.compiled {
            Some(c) => c.open_cover(i),
            None => self.slots[i]
                .as_ref()?
                .filter
                .as_ref()
                .expect("interpreted tier holds filter objects")
                .open_cover(),
        }
    }

    fn open_len_of(&self, i: usize) -> usize {
        match &self.compiled {
            Some(c) => c.open_len(i),
            None => self.slots[i].as_ref().map_or(0, |s| {
                s.filter
                    .as_ref()
                    .expect("interpreted tier holds filter objects")
                    .open_len()
            }),
        }
    }

    /// The RG+C group timely cut (Fig. 3.3), shared by the per-tuple and
    /// columnar ingest paths: force-close everything when the open span
    /// plus the predicted greedy run time would breach the constraint.
    fn maybe_cut_all(&mut self, now: Micros) {
        if let Some(c) = self.constraint {
            if let Some(oldest) = self.oldest_pending_candidate() {
                let predicted = self.predictor.predict(self.pending_candidates() + 1);
                let span = now.saturating_sub(oldest);
                if span.checked_add(predicted).is_none_or(|t| t >= c.max_delay) {
                    self.cut_all(now);
                }
            }
        }
    }

    fn drain_regions(&mut self, now: Micros) {
        let open_covers: Vec<TimeCover> = (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .filter_map(|i| self.open_cover_of(i))
            .collect();
        for region in self.tracker.drain_ready(&open_covers, now) {
            self.complete_region(region, now);
        }
    }

    /// Batch-path variant of [`drain_regions`](Self::drain_regions):
    /// sources the open covers from the compiled roster's open-slot index
    /// (O(open slots) per row instead of a full roster scan) and reuses
    /// one buffer across rows. The cover list is identical to the full
    /// scan's, so region completion — and therefore every emission — is
    /// byte-identical to the single-tuple reference path.
    fn drain_regions_columnar(&mut self, now: Micros) {
        if !self.tracker.any_time_ready(now) {
            return;
        }
        let mut covers = std::mem::take(&mut self.cover_buf);
        self.compiled
            .as_ref()
            .expect("columnar rows run on the compiled tier")
            .open_covers_into(&mut covers);
        for region in self.tracker.drain_ready(&covers, now) {
            self.complete_region(region, now);
        }
        self.cover_buf = covers;
    }

    fn complete_region(&mut self, region: Region, _now: Micros) {
        self.watermark = self.watermark.max(region.cover().max);
        self.metrics.regions += 1;
        self.metrics.region_sizes.push(region.size());
        if region.was_cut() {
            self.metrics.regions_cut += 1;
        }
        // The distinct-id universe serves both the solver and the cleanup
        // below — collected once per region.
        let ids = region.distinct_ids();
        if self.algorithm == Algorithm::RegionGreedy {
            let t0 = Instant::now();
            let choices = greedy_hitting_set_over(region.sets(), &ids);
            let elapsed = t0.elapsed();
            self.metrics.greedy_cpu += elapsed;
            self.predictor
                .observe(region.size(), Micros(elapsed.as_micros() as u64));
            for choice in choices {
                for &si in &choice.covers {
                    let fid = region.sets()[si].filter;
                    self.enqueue(choice.id, fid);
                    self.metrics.per_filter[fid.index()].chosen += 1;
                }
            }
        }
        // Cleanup: tuples of a completed region can never appear in a
        // future candidate set (their covers would intersect the region's),
        // so their ids leave every engine structure here — this is the
        // moment the id-stability window of `crate::tuple` ends.
        for id in ids {
            self.utility.remove(id);
            self.recently_decided.remove(&id);
            if self.pending.contains_key(&id) {
                self.releasable.insert(id);
            } else {
                self.pool.release(id);
            }
        }
    }

    fn enqueue(&mut self, id: TupleId, recipient: FilterId) {
        self.pending.entry(id).or_default().insert(recipient);
    }

    /// Drops a tuple from the pool once nothing can reference it again.
    fn maybe_drop(&mut self, id: TupleId) {
        if self.utility.get(id) == 0
            && !self.pending.contains_key(&id)
            && !self.recently_decided.contains(&id)
        {
            self.pool.release(id);
        }
    }

    /// Stages this push step's releases into the scratch buffer, honouring
    /// the output strategy.
    fn flush_to_scratch(&mut self, now: Micros) {
        match (self.algorithm, self.strategy) {
            (Algorithm::SelfInterested, _) => self.release_to_scratch(now, Release::All),
            (_, OutputStrategy::PerCandidateSet) => self.release_to_scratch(now, Release::All),
            (_, OutputStrategy::Batched(n)) => {
                self.batch_counter += 1;
                if self.batch_counter >= n {
                    self.batch_counter = 0;
                    self.release_to_scratch(now, Release::All);
                }
            }
            (_, OutputStrategy::Earliest) => self.release_to_scratch(now, Release::Ready),
        }
    }

    /// Releases pending outputs into the scratch buffer. The buffer's
    /// allocation is reused across pushes; the recipient sets are moved out
    /// of `pending`, so releasing performs no allocation at all.
    fn release_to_scratch(&mut self, now: Micros, which: Release) {
        match which {
            Release::All => {
                while let Some((id, recipients)) = self.pending.pop_first() {
                    self.releasable.remove(&id);
                    self.emit_to_scratch(id, recipients, now);
                }
            }
            Release::Ready => {
                while let Some(id) = self.releasable.pop_first() {
                    let Some(recipients) = self.pending.remove(&id) else {
                        continue;
                    };
                    self.emit_to_scratch(id, recipients, now);
                }
            }
        }
    }

    /// Builds one emission (with all release-side accounting) onto the
    /// scratch buffer.
    fn emit_to_scratch(&mut self, id: TupleId, recipients: FilterSet, now: Micros) {
        // `resolve`, not `get`: rows interned from a columnar batch
        // materialise their payload here, at emission, and only here.
        let Some(tuple) = self.pool.resolve(id) else {
            debug_assert!(false, "pending tuple {id} missing from pool");
            return;
        };
        self.metrics.emissions += 1;
        self.metrics.recipient_labels += recipients.len() as u64;
        if self.max_emitted_id.is_some_and(|m| id < m) {
            self.metrics.disordered_emissions += 1;
        }
        self.max_emitted_id = Some(self.max_emitted_id.map_or(id, |m| m.max(id)));
        if self.emitted_ids.insert(id) {
            self.metrics.output_tuples += 1;
        }
        self.metrics
            .latencies_us
            .push(now.saturating_sub(tuple.timestamp()).as_micros());
        // The tuple may still be re-chosen while its region is
        // incomplete (per-candidate-set strategy); region completion
        // releases it from the pool for good.
        if self.utility.get(id) == 0 && !self.recently_decided.contains(&id) {
            self.pool.release(id);
        }
        self.scratch.push(Emission {
            tuple,
            recipients,
            emitted_at: now,
        });
    }

    /// Hands the staged emissions to the sink and recycles the buffer.
    /// Runs after the CPU clock stops so sink-side work (multicast,
    /// collection) never counts as filtering cost.
    fn drain_scratch<S: EmissionSink>(&mut self, sink: &mut S) {
        if !self.scratch.is_empty() {
            sink.accept_batch(&self.scratch);
            self.scratch.clear();
        }
    }

    fn oldest_pending_candidate(&self) -> Option<Micros> {
        let open_min = (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .filter_map(|i| self.open_cover_of(i))
            .map(|c| c.min)
            .min();
        match (self.tracker.earliest_pending(), open_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn pending_candidates(&self) -> usize {
        self.tracker.pending_candidates()
            + (0..self.slots.len())
                .filter(|&i| self.slots[i].is_some())
                .map(|i| self.open_len_of(i))
                .sum::<usize>()
    }
}

/// The engine is the canonical [`StreamOperator`]: pipelines compose it
/// with dissemination/metering sinks without naming `GroupEngine`.
impl StreamOperator for GroupEngine {
    fn process(&mut self, tuple: Tuple, sink: &mut impl EmissionSink) -> Result<(), Error> {
        self.push_into(tuple, sink)
    }

    fn finish(&mut self, sink: &mut impl EmissionSink) -> Result<(), Error> {
        self.finish_into(sink)
    }
}
