//! Engine tests transcribing the dissertation's worked examples
//! (Figs. 2.8, 2.11, 3.4, 3.5) plus behavioural coverage of strategies,
//! cuts and the SI baseline.

use super::*;
use crate::quality::FilterSpec;
use crate::tuple::series;

/// The running example stream: §2.1.1's nine tuples plus the closing 112,
/// one tuple every 10 ms starting at 10 ms.
fn paper_stream() -> (Schema, Vec<Tuple>) {
    let schema = Schema::new(["t"]);
    let values = [0.0, 35.0, 29.0, 45.0, 50.0, 59.0, 80.0, 97.0, 100.0, 112.0];
    let pts: Vec<(u64, f64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| ((i as u64 + 1) * 10, v))
        .collect();
    let tuples = series(&schema, "t", &pts);
    (schema, tuples)
}

/// Filters A(10,50), B(5,40), C(25,80) from Fig. 2.5.
fn abc_specs() -> Vec<FilterSpec> {
    vec![
        FilterSpec::delta("t", 50.0, 10.0).with_label("A"),
        FilterSpec::delta("t", 40.0, 5.0).with_label("B"),
        FilterSpec::delta("t", 80.0, 25.0).with_label("C"),
    ]
}

fn run(
    algorithm: Algorithm,
    strategy: OutputStrategy,
    constraint: Option<TimeConstraint>,
) -> (GroupEngine, Vec<Emission>) {
    let (schema, tuples) = paper_stream();
    let mut b = GroupEngine::builder(schema)
        .algorithm(algorithm)
        .output_strategy(strategy)
        .filters(abc_specs());
    if let Some(c) = constraint {
        b = b.time_constraint(c);
    }
    let mut engine = b.build().unwrap();
    let emissions = engine.run(tuples).unwrap();
    (engine, emissions)
}

/// Value of the single attribute of an emission.
fn val(e: &Emission) -> f64 {
    e.tuple.values()[0]
}

fn recipients(e: &Emission) -> Vec<usize> {
    e.recipients.iter().map(|f| f.index()).collect()
}

#[test]
fn region_greedy_reproduces_fig_2_8() {
    let (engine, emissions) = run(Algorithm::RegionGreedy, OutputStrategy::Earliest, None);
    // Region 1 at slot 2: 0 -> {A,B,C}; region 2 at slot 10: 100 -> {A,B,C}
    // then 50 -> {A,B}.
    let summary: Vec<(f64, Vec<usize>)> =
        emissions.iter().map(|e| (val(e), recipients(e))).collect();
    assert_eq!(
        summary,
        vec![
            (0.0, vec![0, 1, 2]),
            (50.0, vec![0, 1]),
            (100.0, vec![0, 1, 2]),
        ]
    );
    let m = engine.metrics();
    assert_eq!(m.input_tuples, 10);
    assert_eq!(m.output_tuples, 3);
    assert_eq!(m.regions, 2);
    assert_eq!(m.regions_cut, 0);
    // SI would output {0,50,100} ∪ {0,45,97} ∪ {0,80} = 6 distinct tuples.
    // Group-aware needs only 3.
    assert!(m.oi_ratio() < 0.5);
}

#[test]
fn per_candidate_set_reproduces_fig_2_11() {
    let (engine, emissions) = run(Algorithm::PerCandidateSet, OutputStrategy::Earliest, None);
    // Decisions: 0 -> {A,B,C} (slot 2), 50 -> {B} (slot 6), 50 -> {A}
    // (slot 7), 100 -> {A,B,C} (slot 10). Under the Earliest strategy the
    // decisions are multicast at region completion, merged per tuple.
    let summary: Vec<(f64, Vec<usize>)> =
        emissions.iter().map(|e| (val(e), recipients(e))).collect();
    assert_eq!(
        summary,
        vec![
            (0.0, vec![0, 1, 2]),
            (50.0, vec![0, 1]),
            (100.0, vec![0, 1, 2]),
        ]
    );
    assert_eq!(engine.metrics().output_tuples, 3);
    // Each filter chose one tuple per closed set: A and B have 3 sets, C 2.
    let chosen: Vec<u64> = engine
        .metrics()
        .per_filter
        .iter()
        .map(|f| f.chosen)
        .collect();
    assert_eq!(chosen, vec![3, 3, 2]);
}

#[test]
fn per_candidate_set_output_strategy_emits_at_decision_time() {
    let (_, emissions) = run(
        Algorithm::PerCandidateSet,
        OutputStrategy::PerCandidateSet,
        None,
    );
    // Decision times: slot 2 (20 ms), slot 6 (60 ms), slot 7 (70 ms),
    // slot 10 (100 ms); tuple 50 is emitted twice (to B, then to A).
    let summary: Vec<(f64, Vec<usize>, u64)> = emissions
        .iter()
        .map(|e| (val(e), recipients(e), e.emitted_at.as_micros() / 1000))
        .collect();
    assert_eq!(
        summary,
        vec![
            (0.0, vec![0, 1, 2], 20),
            (50.0, vec![1], 60),
            (50.0, vec![0], 70),
            (100.0, vec![0, 1, 2], 100),
        ]
    );
}

#[test]
fn self_interested_baseline_emits_references() {
    let (engine, emissions) = run(Algorithm::SelfInterested, OutputStrategy::Earliest, None);
    // A: {0,50,100}; B: {0,45,97}; C: {0,80} -> union {0,45,50,80,97,100}.
    let mut vals: Vec<f64> = emissions.iter().map(val).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(vals, vec![0.0, 45.0, 50.0, 80.0, 97.0, 100.0]);
    let m = engine.metrics();
    assert_eq!(m.output_tuples, 6);
    // SI emits at reference identification: zero filtering latency.
    assert!(m.latencies_us.iter().all(|&l| l == 0));
    // tuple 0 is shared by all three filters even under SI multiplexing
    let zero = emissions.iter().find(|e| val(e) == 0.0).unwrap();
    assert_eq!(recipients(zero), vec![0, 1, 2]);
}

#[test]
fn group_aware_never_exceeds_si_output() {
    for algo in [Algorithm::RegionGreedy, Algorithm::PerCandidateSet] {
        let (ga, _) = run(algo, OutputStrategy::Earliest, None);
        let (si, _) = run(Algorithm::SelfInterested, OutputStrategy::Earliest, None);
        assert!(
            ga.metrics().output_tuples <= si.metrics().output_tuples,
            "{algo:?} produced more than SI"
        );
    }
}

#[test]
fn rg_with_cut_reproduces_fig_3_4() {
    // A 30 ms group constraint triggers the cut right after slot 7
    // (tuple 80): C's open set {59, 80} is force-closed, region 2 closes,
    // and the greedy picks 59 -> {A, C}, 50 -> {B}. Later 100 -> {A, B}.
    let (engine, emissions) = run(
        Algorithm::RegionGreedy,
        OutputStrategy::Earliest,
        Some(TimeConstraint::max_delay(Micros::from_millis(30))),
    );
    let summary: Vec<(f64, Vec<usize>)> =
        emissions.iter().map(|e| (val(e), recipients(e))).collect();
    assert_eq!(
        summary,
        vec![
            (0.0, vec![0, 1, 2]),
            (50.0, vec![1]),
            (59.0, vec![0, 2]),
            (100.0, vec![0, 1]),
        ]
    );
    let m = engine.metrics();
    assert_eq!(m.regions, 3);
    assert_eq!(m.regions_cut, 1);
    assert_eq!(m.output_tuples, 4, "cuts trade bandwidth for latency");
}

#[test]
fn ps_with_cut_reproduces_fig_3_5() {
    // A 30 ms per-filter budget cuts C's candidate set before tuple 100 is
    // admitted (slot 9): C chooses 97; A and B then follow (heuristic 1).
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .algorithm(Algorithm::PerCandidateSet)
        .output_strategy(OutputStrategy::PerCandidateSet)
        .time_constraint(TimeConstraint::max_delay(Micros::from_millis(30)))
        .filters(abc_specs())
        .build()
        .unwrap();
    let emissions = engine.run(tuples).unwrap();
    let summary: Vec<(f64, Vec<usize>)> =
        emissions.iter().map(|e| (val(e), recipients(e))).collect();
    assert_eq!(
        summary,
        vec![
            (0.0, vec![0, 1, 2]),
            (50.0, vec![1]),
            (50.0, vec![0]),
            (97.0, vec![2]),
            (97.0, vec![0, 1]),
        ]
    );
    assert_eq!(engine.metrics().output_tuples, 3);
}

#[test]
fn batched_strategy_delays_emissions() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .algorithm(Algorithm::RegionGreedy)
        .output_strategy(OutputStrategy::Batched(10))
        .filters(abc_specs())
        .build()
        .unwrap();
    let mut per_push: Vec<usize> = Vec::new();
    for t in tuples {
        per_push.push(engine.push(t).unwrap().len());
    }
    // Nothing before the 10th tuple; everything decided so far at tuple 10.
    assert!(per_push[..9].iter().all(|&n| n == 0));
    assert_eq!(per_push[9], 3);
}

#[test]
fn earliest_latency_below_batched_latency() {
    let run_with = |strategy| {
        let (engine, _) = run(Algorithm::RegionGreedy, strategy, None);
        engine.metrics().mean_latency()
    };
    let earliest = run_with(OutputStrategy::Earliest);
    let batched = run_with(OutputStrategy::Batched(10));
    assert!(
        earliest <= batched,
        "earliest {earliest} vs batched {batched}"
    );
}

#[test]
fn compression_ratio_preserved_by_region_greedy() {
    // §2.3.3: for stateless filters, RG chooses exactly one tuple per
    // reference output.
    let (engine, _) = run(Algorithm::RegionGreedy, OutputStrategy::Earliest, None);
    for f in &engine.metrics().per_filter {
        assert_eq!(f.references, f.chosen);
    }
}

#[test]
fn stateful_filters_require_per_candidate_set() {
    let schema = Schema::new(["t"]);
    let err = GroupEngine::builder(schema.clone())
        .algorithm(Algorithm::RegionGreedy)
        .filter(FilterSpec::stateful_delta("t", 50.0, 10.0))
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig { .. }));
    // …but PS accepts them, and SI silently builds a stateless twin.
    assert!(GroupEngine::builder(schema.clone())
        .algorithm(Algorithm::PerCandidateSet)
        .filter(FilterSpec::stateful_delta("t", 50.0, 10.0))
        .build()
        .is_ok());
    assert!(GroupEngine::builder(schema)
        .algorithm(Algorithm::SelfInterested)
        .filter(FilterSpec::stateful_delta("t", 50.0, 10.0))
        .build()
        .is_ok());
}

#[test]
fn empty_group_rejected() {
    let err = GroupEngine::builder(Schema::new(["t"]))
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig { .. }));
}

#[test]
fn ordering_violations_rejected() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .filters(abc_specs())
        .build()
        .unwrap();
    engine.push(tuples[0].clone()).unwrap();
    // a decreasing timestamp
    let bad_ts = Tuple::from_wire(1, Micros::from_millis(5), tuples[0].values().to_vec());
    assert!(matches!(engine.push(bad_ts), Err(Error::OutOfOrder { .. })));
    // an equal timestamp with the next dense seq is legal (non-decreasing
    // order; the seq range is the tiebreak)
    engine.push(tuples[0].with_seq(1)).unwrap();
    // gap in sequence numbers
    let bad_seq = tuples[2].clone().with_seq(5);
    assert!(matches!(
        engine.push(bad_seq),
        Err(Error::NonContiguousSeq { .. })
    ));
    // a correct continuation still works
    engine.push(tuples[1].with_seq(2)).unwrap();
}

#[test]
fn push_after_finish_fails() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .filters(abc_specs())
        .build()
        .unwrap();
    engine.finish().unwrap();
    assert!(matches!(
        engine.push(tuples[0].clone()),
        Err(Error::Finished)
    ));
    assert!(matches!(engine.finish(), Err(Error::Finished)));
}

#[test]
fn finish_flushes_open_state() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .algorithm(Algorithm::RegionGreedy)
        .filters(abc_specs())
        .build()
        .unwrap();
    let mut emissions = Vec::new();
    // Stop mid-stream (after tuple 97): sets are still open.
    for t in tuples.into_iter().take(8) {
        emissions.extend(engine.push(t).unwrap());
    }
    let tail = engine.finish().unwrap();
    assert!(!tail.is_empty(), "finish must flush the open region");
    // every filter's quality still satisfied: at least region-1 output 0
    assert!(emissions.iter().any(|e| val(e) == 0.0));
}

#[test]
fn every_closed_set_is_hit_by_some_emission() {
    for algo in [Algorithm::RegionGreedy, Algorithm::PerCandidateSet] {
        let (engine, emissions) = run(algo, OutputStrategy::Earliest, None);
        // Per filter: #sets closed == #logical outputs delivered.
        let m = engine.metrics();
        for (i, f) in m.per_filter.iter().enumerate() {
            let delivered: u64 = emissions
                .iter()
                .filter(|e| e.recipients.iter().any(|r| r.index() == i))
                .count() as u64;
            assert_eq!(
                delivered, f.sets_closed,
                "{algo:?}: filter {i} delivered {delivered} of {} sets",
                f.sets_closed
            );
        }
    }
}

#[test]
fn quality_guarantee_all_chosen_tuples_within_slack() {
    // Every tuple delivered to a DC filter must be within slack of one of
    // its reference values.
    let (schema, tuples) = paper_stream();
    let refs: Vec<Vec<f64>> = vec![
        vec![0.0, 50.0, 100.0], // A
        vec![0.0, 45.0, 97.0],  // B
        vec![0.0, 80.0],        // C
    ];
    let slacks = [10.0, 5.0, 25.0];
    let mut engine = GroupEngine::builder(schema)
        .algorithm(Algorithm::RegionGreedy)
        .filters(abc_specs())
        .build()
        .unwrap();
    let emissions = engine.run(tuples).unwrap();
    for e in &emissions {
        for r in &e.recipients {
            let i = r.index();
            let v = e.tuple.values()[0];
            let ok = refs[i].iter().any(|rf| (v - rf).abs() <= slacks[i]);
            assert!(ok, "tuple {v} not within slack of filter {i}'s references");
        }
    }
}

#[test]
fn metrics_latency_reflects_region_wait() {
    let (engine, _) = run(Algorithm::RegionGreedy, OutputStrategy::Earliest, None);
    let m = engine.metrics();
    // Tuple 0 (ts 10 ms) is released at 20 ms; tuple 50 (ts 50 ms) at
    // 100 ms; tuple 100 (ts 90 ms) at 100 ms.
    let mut lats = m.latencies_us.clone();
    lats.sort_unstable();
    assert_eq!(lats, vec![10_000, 10_000, 50_000]);
}

#[test]
fn run_convenience_equals_manual_loop() {
    let (schema, tuples) = paper_stream();
    let mut e1 = GroupEngine::builder(schema.clone())
        .filters(abc_specs())
        .build()
        .unwrap();
    let all = e1.run(tuples.clone()).unwrap();
    let mut e2 = GroupEngine::builder(schema)
        .filters(abc_specs())
        .build()
        .unwrap();
    let mut manual = Vec::new();
    for t in tuples {
        manual.extend(e2.push(t).unwrap());
    }
    manual.extend(e2.finish().unwrap());
    assert_eq!(all, manual);
}

#[test]
fn accessors_report_configuration() {
    let (schema, _) = paper_stream();
    let engine = GroupEngine::builder(schema.clone())
        .algorithm(Algorithm::PerCandidateSet)
        .time_constraint(TimeConstraint::max_delay(Micros::from_millis(5)))
        .filters(abc_specs())
        .build()
        .unwrap();
    assert_eq!(engine.algorithm(), Algorithm::PerCandidateSet);
    assert_eq!(
        engine.time_constraint(),
        Some(TimeConstraint::max_delay(Micros::from_millis(5)))
    );
    assert_eq!(engine.specs().len(), 3);
    assert!(engine.schema().same_as(&schema));
    let m = engine.into_metrics();
    assert_eq!(m.input_tuples, 0);
}

#[test]
fn constraint_derived_from_filter_tolerances() {
    let (schema, _) = paper_stream();
    let engine = GroupEngine::builder(schema)
        .filter(FilterSpec::delta("t", 50.0, 10.0).with_latency_tolerance(Micros::from_millis(40)))
        .filter(FilterSpec::delta("t", 40.0, 5.0).with_latency_tolerance(Micros::from_millis(20)))
        .build()
        .unwrap();
    assert_eq!(
        engine.time_constraint(),
        Some(TimeConstraint::max_delay(Micros::from_millis(20)))
    );
}

#[test]
fn emission_latency_helper() {
    let (_, emissions) = run(Algorithm::RegionGreedy, OutputStrategy::Earliest, None);
    for e in &emissions {
        assert_eq!(
            e.latency(),
            e.emitted_at.saturating_sub(e.tuple.timestamp())
        );
    }
}

#[test]
fn aggressive_cuts_degrade_towards_si_but_never_worse() {
    // With an extremely tight constraint, every region is cut almost
    // immediately; output size must still be <= SI's.
    let (ga, _) = run(
        Algorithm::RegionGreedy,
        OutputStrategy::Earliest,
        Some(TimeConstraint::max_delay(Micros::from_millis(1))),
    );
    let (si, _) = run(Algorithm::SelfInterested, OutputStrategy::Earliest, None);
    assert!(ga.metrics().output_tuples <= si.metrics().output_tuples);
    assert!(ga.metrics().regions_cut > 0);
    assert!(ga.metrics().cut_fraction() > 0.0);
}

#[test]
fn mean_region_size_matches_paper_scale() {
    let (engine, _) = run(Algorithm::RegionGreedy, OutputStrategy::Earliest, None);
    // Region 1 has 3 candidates; region 2's five sets hold 3+2+4+2+2 = 13
    // candidates with multiplicity.
    let m = engine.metrics();
    assert_eq!(m.region_sizes, vec![3, 13]);
}

#[test]
fn watermark_advances_with_region_completion() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .filters(abc_specs())
        .build()
        .unwrap();
    assert_eq!(engine.watermark(), Micros::ZERO);
    let mut tuples = tuples.into_iter();
    for t in tuples.by_ref().take(3) {
        engine.push(t).unwrap();
    }
    // region 1 (cover [10,10] ms) completed at slot 2
    assert_eq!(engine.watermark(), Micros::from_millis(10));
    for t in tuples {
        engine.push(t).unwrap();
    }
    engine.finish().unwrap();
    // region 2's cover extends to tuple 100 @ 90 ms
    assert_eq!(engine.watermark(), Micros::from_millis(90));
}

#[test]
fn pcs_strategy_reports_disorder() {
    // Disorder happens when a *lower* sequence number is released in a
    // later flush than a higher one. Build it with misaligned sampler
    // windows: P samples 50 ms windows (decides and emits early), Q is a
    // k=3 reservoir over 170 ms windows — when Q closes it prefers P's
    // already-decided tuples (heuristic 1), which are older than P's most
    // recent emission.
    let build = |strategy| {
        let schema = Schema::new(["t"]);
        let pts: Vec<(u64, f64)> = (0..40).map(|i| (10 * (i + 1), i as f64)).collect();
        let tuples = crate::tuple::series(&schema, "t", &pts);
        let mut engine = GroupEngine::builder(schema)
            .algorithm(Algorithm::PerCandidateSet)
            .output_strategy(strategy)
            .filter(FilterSpec::stratified_sample(
                "t",
                Micros::from_millis(50),
                1000.0, // never "high dynamics": always the low rate
                20.0,
                20.0,
            ))
            .filter(FilterSpec::reservoir("t", Micros::from_millis(170), 3))
            .build()
            .unwrap();
        engine.run(tuples).unwrap();
        engine
    };
    let pcs = build(OutputStrategy::PerCandidateSet);
    assert!(
        pcs.metrics().disordered_emissions > 0,
        "expected out-of-order emissions under Pcs with misaligned windows"
    );
    // ...while the Earliest strategy holds outputs until the region
    // completes and releases them in sequence order: no disorder.
    let ordered = build(OutputStrategy::Earliest);
    assert_eq!(ordered.metrics().disordered_emissions, 0);
}

// ------------------------------------------------------------------
// sink-based streaming path
// ------------------------------------------------------------------

#[test]
fn sink_path_matches_vec_wrappers_per_push() {
    // Two identical engines in lockstep: per push, the sink path must
    // release exactly what the legacy Vec wrapper returns — including the
    // batching boundaries of every strategy.
    for algorithm in [
        Algorithm::RegionGreedy,
        Algorithm::PerCandidateSet,
        Algorithm::SelfInterested,
    ] {
        for strategy in [
            OutputStrategy::Earliest,
            OutputStrategy::PerCandidateSet,
            OutputStrategy::Batched(3),
        ] {
            let (schema, tuples) = paper_stream();
            let build = || {
                GroupEngine::builder(schema.clone())
                    .algorithm(algorithm)
                    .output_strategy(strategy)
                    .filters(abc_specs())
                    .build()
                    .unwrap()
            };
            let mut legacy = build();
            let mut streamed = build();
            let mut sink = VecSink::new();
            for t in tuples {
                let expected = legacy.push(t.clone()).unwrap();
                streamed.push_into(t, &mut sink).unwrap();
                assert_eq!(sink.drain_vec(), expected, "{algorithm:?}/{strategy:?}");
            }
            let expected_tail = legacy.finish().unwrap();
            streamed.finish_into(&mut sink).unwrap();
            assert_eq!(
                sink.drain_vec(),
                expected_tail,
                "{algorithm:?}/{strategy:?}"
            );
            assert_eq!(
                legacy.metrics().output_tuples,
                streamed.metrics().output_tuples
            );
        }
    }
}

#[test]
fn run_into_equals_run() {
    let (schema, tuples) = paper_stream();
    let build = || {
        GroupEngine::builder(schema.clone())
            .filters(abc_specs())
            .build()
            .unwrap()
    };
    let legacy = build().run(tuples.clone()).unwrap();
    let mut sink = VecSink::new();
    build().run_into(tuples, &mut sink).unwrap();
    assert_eq!(sink.into_vec(), legacy);
}

#[test]
fn stream_operator_seam_drives_the_engine() {
    // Generic over StreamOperator: pipelines never need to name GroupEngine.
    fn drive<O: crate::sink::StreamOperator>(
        op: &mut O,
        tuples: Vec<Tuple>,
        sink: &mut impl EmissionSink,
    ) -> Result<(), Error> {
        op.process_batch(tuples, sink)?;
        op.finish(sink)
    }
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .filters(abc_specs())
        .build()
        .unwrap();
    let mut sink = VecSink::new();
    drive(&mut engine, tuples, &mut sink).unwrap();
    assert_eq!(sink.len() as u64, engine.metrics().emissions);
    assert!(!sink.is_empty());
}

#[test]
fn push_into_after_finish_fails() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .filters(abc_specs())
        .build()
        .unwrap();
    let mut sink = crate::sink::NullSink;
    engine.finish_into(&mut sink).unwrap();
    assert!(matches!(
        engine.push_into(tuples[0].clone(), &mut sink),
        Err(Error::Finished)
    ));
    assert!(matches!(
        engine.finish_into(&mut sink),
        Err(Error::Finished)
    ));
}

#[test]
fn batched_strategy_batches_through_sink() {
    let (schema, tuples) = paper_stream();
    let mut engine = GroupEngine::builder(schema)
        .algorithm(Algorithm::SelfInterested)
        .output_strategy(OutputStrategy::Batched(10))
        .filters(abc_specs())
        .build()
        .unwrap();
    // SI releases everything pending on every push regardless of batching;
    // use a counting check on the sink batches instead: every accept_batch
    // call carries at least one emission (empty steps skip the sink).
    struct BatchAudit {
        batches: usize,
        emissions: usize,
    }
    impl EmissionSink for BatchAudit {
        fn accept(&mut self, _: &Emission) {
            self.emissions += 1;
        }
        fn accept_batch(&mut self, emissions: &[Emission]) {
            assert!(!emissions.is_empty(), "engine must skip empty batches");
            self.batches += 1;
            self.emissions += emissions.len();
        }
    }
    let mut audit = BatchAudit {
        batches: 0,
        emissions: 0,
    };
    engine.run_into(tuples, &mut audit).unwrap();
    assert!(audit.batches > 0);
    assert_eq!(audit.emissions as u64, engine.metrics().emissions);
    assert!(
        audit.batches <= audit.emissions,
        "batches group emissions, never split them"
    );
}

// ---------------------------------------------------------------------
// subscription control plane (epochs)
// ---------------------------------------------------------------------

mod control_plane {
    use super::*;
    use crate::metrics::EngineMetrics;
    use crate::sink::VecSink;

    fn long_stream(n: usize) -> (Schema, Vec<Tuple>) {
        let schema = Schema::new(["t"]);
        let pts: Vec<(u64, f64)> = (0..n)
            .map(|i| {
                (
                    (i as u64 + 1) * 10,
                    (i as f64 * 0.7).sin() * 40.0 + i as f64 * 0.3,
                )
            })
            .collect();
        let tuples = series(&schema, "t", &pts);
        (schema, tuples)
    }

    fn fingerprint(m: &EngineMetrics) -> (u64, u64, u64, u64, Vec<u64>) {
        (
            m.input_tuples,
            m.output_tuples,
            m.emissions,
            m.recipient_labels,
            m.latencies_us.clone(),
        )
    }

    #[test]
    fn ids_are_stable_and_never_reused() {
        let (schema, tuples) = long_stream(40);
        let mut e = GroupEngine::builder(schema)
            .filters(abc_specs())
            .build()
            .unwrap();
        let mut sink = VecSink::new();
        e.push_batch(tuples[..10].to_vec(), &mut sink).unwrap();
        let d = e.add_filter(FilterSpec::delta("t", 30.0, 10.0)).unwrap();
        assert_eq!(d.index(), 3);
        e.remove_filter(FilterId::from_index(1)).unwrap();
        assert_eq!(e.pending_control_ops(), 2);
        e.push_batch(tuples[10..20].to_vec(), &mut sink).unwrap();
        assert_eq!(e.pending_control_ops(), 0);
        assert_eq!(e.epoch(), 1);
        // the vacated slot is never handed out again
        let d2 = e.add_filter(FilterSpec::delta("t", 25.0, 8.0)).unwrap();
        assert_eq!(d2.index(), 4);
        e.push_batch(tuples[20..].to_vec(), &mut sink).unwrap();
        let roster: Vec<usize> = e.roster().iter().map(|(id, _)| id.index()).collect();
        assert_eq!(roster, vec![0, 2, 3, 4]);
        assert_eq!(e.group_size(), 4);
        e.finish_into(&mut sink).unwrap();
    }

    #[test]
    fn control_op_validation() {
        let (schema, tuples) = long_stream(10);
        let mut e = GroupEngine::builder(schema)
            .filter(FilterSpec::delta("t", 40.0, 5.0))
            .build()
            .unwrap();
        // unknown id / unknown attribute / empty-group guard
        assert!(matches!(
            e.remove_filter(FilterId::from_index(7)),
            Err(Error::UnknownFilter { .. })
        ));
        assert!(matches!(
            e.remove_filter(FilterId::from_index(0)),
            Err(Error::InvalidConfig { .. }),
        ));
        assert!(e.add_filter(FilterSpec::delta("nope", 1.0, 0.1)).is_err());
        assert!(matches!(
            e.update_filter(FilterId::from_index(3), FilterSpec::delta("t", 1.0, 0.1)),
            Err(Error::UnknownFilter { .. })
        ));
        // a queued add makes its id a valid remove target, and removing
        // the only *remaining* filter is still rejected
        let id = e.add_filter(FilterSpec::delta("t", 20.0, 4.0)).unwrap();
        e.remove_filter(FilterId::from_index(0)).unwrap();
        assert!(matches!(
            e.remove_filter(id),
            Err(Error::InvalidConfig { .. })
        ));
        let mut sink = VecSink::new();
        e.run_into(tuples, &mut sink).unwrap();
        // after finish every op errors
        assert!(matches!(
            e.add_filter(FilterSpec::delta("t", 9.0, 1.0)),
            Err(Error::Finished)
        ));
    }

    #[test]
    fn rejected_push_does_not_cross_the_epoch_boundary() {
        // A tuple that fails stream-order validation must leave the
        // engine exactly as it was: no epoch advance, no boundary drain,
        // ops still queued for the next accepted tuple.
        let (schema, tuples) = long_stream(20);
        let mut e = GroupEngine::builder(schema)
            .filters(abc_specs())
            .build()
            .unwrap();
        let mut sink = VecSink::new();
        e.push_batch(tuples[..10].to_vec(), &mut sink).unwrap();
        e.add_filter(FilterSpec::delta("t", 30.0, 10.0)).unwrap();
        let emitted_before = sink.len();
        // replaying an old tuple is rejected before the safe point
        assert!(matches!(
            e.push_into(tuples[3].clone(), &mut sink),
            Err(Error::OutOfOrder { .. })
        ));
        assert_eq!(e.epoch(), 0, "failed push must not advance the epoch");
        assert_eq!(e.pending_control_ops(), 1, "ops stay queued");
        assert_eq!(sink.len(), emitted_before, "no boundary drain leaked");
        // the next accepted tuple crosses the boundary normally
        e.push_into(tuples[10].clone(), &mut sink).unwrap();
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.pending_control_ops(), 0);
        e.finish_into(&mut sink).unwrap();
    }

    #[test]
    fn stateful_add_rejected_under_region_greedy() {
        let (schema, _) = long_stream(4);
        let mut e = GroupEngine::builder(schema)
            .filter(FilterSpec::delta("t", 40.0, 5.0))
            .build()
            .unwrap();
        assert!(matches!(
            e.add_filter(FilterSpec::stateful_delta("t", 20.0, 4.0)),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn churn_is_byte_identical_to_static_rebuild() {
        // The determinism contract, in miniature (the cross-crate
        // `churn_equivalence` suite covers the full matrix): dynamic
        // add/remove/update at a boundary == stop + rebuild (with
        // `filter_at` pinning the surviving ids) + continue.
        let (schema, tuples) = long_stream(60);
        let retuned = FilterSpec::delta("t", 35.0, 12.0);
        let added = FilterSpec::delta("t", 28.0, 9.0);

        let mut dynamic = GroupEngine::builder(schema.clone())
            .filters(abc_specs())
            .build()
            .unwrap();
        let mut dyn_sink = VecSink::new();
        dynamic
            .push_batch(tuples[..30].to_vec(), &mut dyn_sink)
            .unwrap();
        dynamic.add_filter(added.clone()).unwrap();
        dynamic.remove_filter(FilterId::from_index(1)).unwrap();
        dynamic
            .update_filter(FilterId::from_index(2), retuned.clone())
            .unwrap();
        dynamic
            .push_batch(tuples[30..].to_vec(), &mut dyn_sink)
            .unwrap();
        dynamic.finish_into(&mut dyn_sink).unwrap();

        // Static composite: epoch 0 engine over the prefix…
        let mut epoch0 = GroupEngine::builder(schema.clone())
            .filters(abc_specs())
            .build()
            .unwrap();
        let mut static_sink = VecSink::new();
        epoch0
            .push_batch(tuples[..30].to_vec(), &mut static_sink)
            .unwrap();
        epoch0.finish_into(&mut static_sink).unwrap();
        // …then a fresh engine with the post-churn roster on the suffix.
        let specs = abc_specs();
        let mut epoch1 = GroupEngine::builder(schema)
            .filter_at(FilterId::from_index(0), specs[0].clone())
            .filter_at(FilterId::from_index(2), retuned)
            .filter_at(FilterId::from_index(3), added)
            .build()
            .unwrap();
        epoch1
            .push_batch(tuples[30..].to_vec(), &mut static_sink)
            .unwrap();
        epoch1.finish_into(&mut static_sink).unwrap();

        assert_eq!(dyn_sink.as_slice(), static_sink.as_slice());
        // per-epoch metrics match the per-segment engines, and the
        // removed filter's stats survive in the archive
        assert_eq!(dynamic.epoch(), 1);
        assert_eq!(dynamic.epoch_metrics().len(), 1);
        assert_eq!(
            fingerprint(&dynamic.epoch_metrics()[0]),
            fingerprint(epoch0.metrics())
        );
        assert_eq!(
            fingerprint(dynamic.metrics()),
            fingerprint(epoch1.metrics())
        );
        let lifetime = dynamic.lifetime_metrics();
        assert_eq!(
            lifetime.per_filter[1].sets_closed,
            epoch0.metrics().per_filter[1].sets_closed,
            "removed filter's stats survive"
        );
        assert_eq!(
            lifetime.input_tuples,
            epoch0.metrics().input_tuples + epoch1.metrics().input_tuples
        );
    }

    #[test]
    fn builder_rejects_double_pinned_slot() {
        let schema = Schema::new(["t"]);
        assert!(matches!(
            GroupEngine::builder(schema)
                .filter_at(FilterId::from_index(1), FilterSpec::delta("t", 2.0, 0.5))
                .filter_at(FilterId::from_index(1), FilterSpec::delta("t", 3.0, 0.5))
                .build(),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unpinned_specs_fill_lowest_free_slots() {
        let schema = Schema::new(["t"]);
        let e = GroupEngine::builder(schema)
            .filter_at(FilterId::from_index(1), FilterSpec::delta("t", 2.0, 0.5))
            .filter(FilterSpec::delta("t", 3.0, 0.5))
            .filter(FilterSpec::delta("t", 4.0, 0.5))
            .build()
            .unwrap();
        let ids: Vec<usize> = e.roster().iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn sharded_control_ops_match_inline() {
        let (schema, tuples) = long_stream(80);
        let added = FilterSpec::delta("t", 28.0, 9.0);

        let mut inline = GroupEngine::builder(schema.clone())
            .filters(abc_specs())
            .build()
            .unwrap();
        let mut expected = VecSink::new();
        inline
            .push_batch(tuples[..40].to_vec(), &mut expected)
            .unwrap();
        let inline_id = inline.add_filter(added.clone()).unwrap();
        inline.remove_filter(FilterId::from_index(0)).unwrap();
        inline
            .push_batch(tuples[40..].to_vec(), &mut expected)
            .unwrap();
        inline.finish_into(&mut expected).unwrap();

        for n in [1usize, 2, 4] {
            let mut sharded = crate::shard::ShardedEngine::builder()
                .parallelism(n)
                .batch_size(17)
                .route(
                    "group",
                    GroupEngine::builder(schema.clone()).filters(abc_specs()),
                )
                .build()
                .unwrap();
            let mut out = VecSink::new();
            sharded.push_batch(tuples[..40].to_vec(), &mut out).unwrap();
            let id = sharded.add_filter(0, added.clone()).unwrap();
            assert_eq!(id, inline_id, "mirrored id assignment");
            sharded.remove_filter(0, FilterId::from_index(0)).unwrap();
            sharded.push_batch(tuples[40..].to_vec(), &mut out).unwrap();
            sharded.finish_into(&mut out).unwrap();
            assert_eq!(out.as_slice(), expected.as_slice(), "n={n}");
            assert_eq!(
                sharded.metrics().output_tuples,
                inline.lifetime_metrics().output_tuples,
                "n={n}"
            );
        }
    }

    #[test]
    fn sharded_control_op_validation_mirrors_inline() {
        let (schema, _) = long_stream(4);
        let mut e = crate::shard::ShardedEngine::builder()
            .route(
                "group",
                GroupEngine::builder(schema).filter(FilterSpec::delta("t", 40.0, 5.0)),
            )
            .build()
            .unwrap();
        assert!(matches!(
            e.remove_filter(0, FilterId::from_index(0)),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            e.remove_filter(0, FilterId::from_index(5)),
            Err(Error::UnknownFilter { .. })
        ));
        assert!(matches!(
            e.update_filter(1, FilterId::from_index(0), FilterSpec::delta("t", 1.0, 0.1)),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(e
            .add_filter(0, FilterSpec::delta("nope", 1.0, 0.1))
            .is_err());
    }
}
