//! Per-candidate-set output decision (Fig. 2.10, second stage).
//!
//! When a candidate set closes under the per-candidate-set algorithm, its
//! filter decides the output immediately using two heuristics (§2.3.3):
//!
//! 1. prefer tuples **already chosen** by other filters (in the current
//!    region's scope),
//! 2. otherwise prefer the tuple with the **highest group utility**,
//!
//! both subject to the tie-breaking rule (freshest tuple wins). Multi-degree
//! sets pick `k` tuples the same way, honouring the at-most-one-per-rank
//! constraint for top/bottom prescriptions.

use crate::candidate::ClosedSet;
use crate::quality::Prescription;
use crate::tuple::TupleId;
use crate::utility::GroupUtility;
use std::collections::HashSet;

/// Chooses this set's output tuples.
///
/// `recently_decided` holds the ids already chosen by filters in the
/// still-incomplete regions (the global state's `decidedOutput`).
pub(crate) fn decide_outputs(
    set: &ClosedSet,
    utility: &GroupUtility,
    recently_decided: &HashSet<TupleId>,
) -> Vec<TupleId> {
    let ranks = set.eligible_ranks();
    let ranked = set.prescription != Prescription::Any;
    let k = if ranked {
        set.pick_degree.min(ranks.len())
    } else {
        set.pick_degree.min(set.len())
    };
    // (already-chosen, utility, id) — all compared descending.
    let mut candidates: Vec<(bool, u32, TupleId, usize)> = Vec::new();
    for (rank_idx, rank) in ranks.iter().enumerate() {
        for &id in rank {
            candidates.push((
                recently_decided.contains(&id),
                utility.get(id),
                id,
                rank_idx,
            ));
        }
    }
    candidates.sort_by_key(|&(already, utility, id, _)| std::cmp::Reverse((already, utility, id)));

    let mut chosen = Vec::with_capacity(k);
    let mut used_ranks = crate::bitset::BitSet::with_capacity(ranks.len());
    for (_, _, id, rank_idx) in candidates {
        if chosen.len() == k {
            break;
        }
        if ranked && used_ranks.contains(rank_idx) {
            continue;
        }
        if chosen.contains(&id) {
            continue;
        }
        used_ranks.insert(rank_idx);
        chosen.push(id);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandidateTuple, CloseCause, FilterId};
    use crate::time::Micros;

    fn id(seq: u64) -> TupleId {
        TupleId::from_seq(seq)
    }

    fn set(seqs: &[u64], degree: usize, p: Prescription) -> ClosedSet {
        ClosedSet {
            filter: FilterId::from_index(0),
            set_index: 0,
            candidates: seqs
                .iter()
                .map(|&s| CandidateTuple {
                    id: id(s),
                    timestamp: Micros::from_millis(s * 10),
                    key: s as f64,
                })
                .collect(),
            pick_degree: degree,
            prescription: p,
            si_choice: vec![],
            cause: CloseCause::Natural,
        }
    }

    #[test]
    fn already_decided_takes_precedence() {
        let s = set(&[3, 4], 1, Prescription::Any);
        let mut u = GroupUtility::new();
        u.increment(id(3));
        u.increment(id(3)); // utility 2 for the older tuple
        u.increment(id(4));
        let mut decided = HashSet::new();
        decided.insert(id(4));
        // Rule 1 beats rule 2: 4 wins despite lower utility.
        assert_eq!(decide_outputs(&s, &u, &decided), vec![id(4)]);
    }

    #[test]
    fn utility_then_freshness() {
        let s = set(&[3, 4, 5], 1, Prescription::Any);
        let mut u = GroupUtility::new();
        for _ in 0..2 {
            u.increment(id(3));
            u.increment(id(5));
        }
        u.increment(id(4));
        // 3 and 5 tie on utility; 5 is fresher.
        assert_eq!(decide_outputs(&s, &u, &HashSet::new()), vec![id(5)]);
    }

    #[test]
    fn multi_degree_picks_k_distinct() {
        let s = set(&[1, 2, 3, 4], 3, Prescription::Any);
        let u = GroupUtility::new();
        let chosen = decide_outputs(&s, &u, &HashSet::new());
        assert_eq!(chosen.len(), 3);
        let unique: HashSet<TupleId> = chosen.iter().copied().collect();
        assert_eq!(unique.len(), 3);
        // with equal utilities, freshest first
        assert_eq!(chosen, vec![id(4), id(3), id(2)]);
    }

    #[test]
    fn ranked_sets_use_one_per_rank() {
        // keys = seq; Top with degree 2 -> ranks [4], [3]
        let s = set(&[1, 3, 4], 2, Prescription::Top);
        let chosen = decide_outputs(&s, &GroupUtility::new(), &HashSet::new());
        assert_eq!(chosen.len(), 2);
        assert!(chosen.contains(&id(4)) && chosen.contains(&id(3)));
    }

    #[test]
    fn degree_clamps_to_rank_count() {
        let mut s = set(&[1, 2, 3], 3, Prescription::Top);
        for c in &mut s.candidates {
            c.key = 1.0; // single rank
        }
        let chosen = decide_outputs(&s, &GroupUtility::new(), &HashSet::new());
        assert_eq!(chosen.len(), 1);
    }
}
