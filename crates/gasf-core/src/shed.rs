//! Quality-aware load shedding: declared headroom and the degradation
//! ladder.
//!
//! §4.8 of the paper names three remedies for a congested filtering
//! stage — flow-control filters in the input buffer, aggressive sampling
//! to shed load, and *graceful degradation of the filters' quality
//! requirements*. The third is the one only a quality-aware middleware
//! can offer: applications already state slack the system may exploit
//! (that is the whole premise of group-aware filtering), so under
//! pressure the system can **widen candidate sets or lower sampling
//! degrees inside each subscription's declared tolerance** before a
//! single tuple is dropped.
//!
//! This module is the engine-facing half of that mechanism:
//!
//! * [`PushOutcome`] — the credit-based admission verdict bounded
//!   ingress paths return ([`Accepted`](PushOutcome::Accepted) /
//!   [`Throttled`](PushOutcome::Throttled)), surfaced to connectors so
//!   *they* hold data back instead of an unbounded queue absorbing it;
//! * [`ShedHeadroom`] — the application's declaration of how far its
//!   [`FilterSpec`] may be degraded (attached via
//!   [`FilterSpec::with_shed_headroom`]);
//! * [`FilterSpec::degraded`] — the pure **degradation ladder**: rung 0
//!   is the spec itself (byte-identical), higher rungs interpolate
//!   toward the declared floor. Every rung is a valid spec, so the
//!   subscription control plane can apply it like any retune.
//!
//! The policy half — *when* to climb or descend the ladder — lives in
//! `gasf-solar`'s `Shedder`, next to the credit gate that produces the
//! pressure signal.

use crate::quality::{FilterKind, FilterSpec};
use serde::{Deserialize, Serialize};

/// Admission verdict of a credit-gated push.
///
/// A bounded ingress path (the middleware's `try_push` family) admits a
/// tuple only while credits remain; otherwise the input is **not
/// consumed** and the caller — typically a
/// [`SourceConnector`](crate::connector::SourceConnector) driver — must
/// retry the same row once credit returns, or decide to shed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Throttled outcome means the input was NOT consumed"]
pub enum PushOutcome {
    /// The input was admitted (one credit per row was consumed).
    Accepted,
    /// No credit: the input was left with the caller, byte-untouched.
    Throttled,
}

impl PushOutcome {
    /// Whether the input was admitted.
    pub fn is_accepted(self) -> bool {
        matches!(self, PushOutcome::Accepted)
    }
}

/// Degradation headroom declared by an application: how far (and along
/// which axis) the system may degrade the subscription's quality under
/// sustained pressure. Attached to a spec with
/// [`FilterSpec::with_shed_headroom`]; subscriptions without headroom
/// are never degraded.
///
/// The ladder has `rungs + 1` operating points: rung 0 is the spec as
/// subscribed, rung `rungs` sits at the declared floor, intermediate
/// rungs interpolate linearly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedHeadroom {
    /// Number of degradation rungs above the operating point (≥ 1).
    pub rungs: u8,
    /// Delta-family filters: the slack ceiling the application
    /// tolerates. `None` defaults to `delta / 2` — the Axiom-1 maximum,
    /// where consecutive candidate sets touch without intersecting.
    /// Values above `delta / 2` are clamped to it.
    pub max_slack: Option<f64>,
    /// Sampling filters: the floor as a fraction of the operating
    /// point, in `(0, 1]` — reservoir `k` and stratified rates are
    /// lowered toward `operating · floor_fraction`. `None` defaults
    /// to `0.25`.
    pub floor_fraction: Option<f64>,
}

impl ShedHeadroom {
    /// Headroom with `rungs` rungs and default floors (`delta/2` slack
    /// ceiling, `0.25` sampling floor).
    pub fn rungs(rungs: u8) -> Self {
        ShedHeadroom {
            rungs: rungs.max(1),
            max_slack: None,
            floor_fraction: None,
        }
    }

    /// Sets the slack ceiling for delta-family filters.
    pub fn with_max_slack(mut self, max_slack: f64) -> Self {
        self.max_slack = Some(max_slack);
        self
    }

    /// Sets the sampling floor fraction.
    pub fn with_floor_fraction(mut self, floor: f64) -> Self {
        self.floor_fraction = Some(floor);
        self
    }

    /// Validates the declaration (called from [`FilterSpec::validate`]).
    pub(crate) fn validate(&self) -> Result<(), crate::error::Error> {
        if self.rungs == 0 {
            return Err(crate::error::Error::InvalidSpec {
                reason: "shed headroom needs at least one rung".into(),
            });
        }
        if let Some(s) = self.max_slack {
            // `s < 0.0` alone would wave NaN through.
            if s.is_nan() || s < 0.0 {
                return Err(crate::error::Error::InvalidSpec {
                    reason: format!("shed max_slack must be non-negative, got {s}"),
                });
            }
        }
        if let Some(fr) = self.floor_fraction {
            if !(fr > 0.0 && fr <= 1.0) {
                return Err(crate::error::Error::InvalidSpec {
                    reason: format!("shed floor_fraction must be in (0, 1], got {fr}"),
                });
            }
        }
        Ok(())
    }
}

/// Linear interpolation from `from` (rung 0) to `to` (rung `rungs`).
fn ladder(from: f64, to: f64, rung: u8, rungs: u8) -> f64 {
    from + (to - from) * (rung as f64 / rungs as f64)
}

impl FilterSpec {
    /// The spec at one rung of its degradation ladder.
    ///
    /// * Rung 0 is **exactly** this spec (a plain clone) — a shedder
    ///   that never sees pressure never changes anything.
    /// * Rungs `1..=headroom.rungs` interpolate toward the declared
    ///   floor: delta-family slack widens toward the ceiling (wider
    ///   candidate sets → more multicast sharing), reservoir `k` and
    ///   stratified rates drop toward the floor (fewer tuples per
    ///   window). Rungs above the ladder clamp to the top rung.
    /// * Every returned spec still passes [`validate`](Self::validate)
    ///   and keeps its headroom, label and latency tolerance.
    ///
    /// Returns `None` when the subscription declared no headroom and
    /// `rung > 0` — such subscriptions must never be degraded.
    pub fn degraded(&self, rung: u8) -> Option<FilterSpec> {
        if rung == 0 {
            return Some(self.clone());
        }
        let headroom = self.shed?;
        let rungs = headroom.rungs.max(1);
        let rung = rung.min(rungs);
        let mut spec = self.clone();
        match &mut spec.kind {
            FilterKind::Delta { delta, slack, .. }
            | FilterKind::TrendDelta { delta, slack, .. }
            | FilterKind::MultiAttrDelta { delta, slack, .. } => {
                let cap = *delta / 2.0;
                let ceiling = headroom.max_slack.unwrap_or(cap).min(cap);
                if ceiling > *slack {
                    *slack = ladder(*slack, ceiling, rung, rungs);
                }
            }
            FilterKind::Reservoir { k, .. } => {
                let fraction = headroom.floor_fraction.unwrap_or(0.25);
                let floor = ((*k as f64 * fraction).ceil() as u32).clamp(1, *k);
                *k = (ladder(*k as f64, floor as f64, rung, rungs).round() as u32).clamp(floor, *k);
            }
            FilterKind::StratifiedSample {
                high_pct, low_pct, ..
            } => {
                let fraction = headroom.floor_fraction.unwrap_or(0.25);
                for pct in [high_pct, low_pct] {
                    let floor = (*pct * fraction).max(f64::MIN_POSITIVE);
                    *pct = ladder(*pct, floor, rung, rungs).clamp(floor, 100.0);
                }
            }
        }
        Some(spec)
    }

    /// The declared degradation headroom, if any.
    pub fn shed_headroom(&self) -> Option<ShedHeadroom> {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Micros;

    #[test]
    fn rung_zero_is_identity_without_headroom() {
        let spec = FilterSpec::delta("t", 2.0, 0.5);
        assert_eq!(spec.degraded(0), Some(spec.clone()));
        assert_eq!(spec.degraded(1), None, "no headroom, no degradation");
    }

    #[test]
    fn delta_ladder_widens_slack_to_the_axiom_cap() {
        let spec = FilterSpec::delta("t", 2.0, 0.5).with_shed_headroom(ShedHeadroom::rungs(4));
        let slacks: Vec<f64> = (0..=5)
            .map(|r| match spec.degraded(r).unwrap().kind {
                FilterKind::Delta { slack, .. } => slack,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slacks[0], 0.5);
        assert_eq!(slacks[4], 1.0, "top rung hits delta/2");
        assert_eq!(slacks[5], 1.0, "rungs clamp to the ladder top");
        assert!(
            slacks.windows(2).all(|w| w[1] >= w[0]),
            "monotone: {slacks:?}"
        );
        for r in 0..=5 {
            spec.degraded(r).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn delta_ladder_respects_declared_ceiling() {
        let spec = FilterSpec::delta("t", 2.0, 0.5)
            .with_shed_headroom(ShedHeadroom::rungs(2).with_max_slack(0.8));
        match spec.degraded(2).unwrap().kind {
            FilterKind::Delta { slack, .. } => assert_eq!(slack, 0.8),
            _ => unreachable!(),
        }
        // a ceiling below the operating slack degrades nothing
        let tight = FilterSpec::delta("t", 2.0, 0.9)
            .with_shed_headroom(ShedHeadroom::rungs(2).with_max_slack(0.1));
        match tight.degraded(2).unwrap().kind {
            FilterKind::Delta { slack, .. } => assert_eq!(slack, 0.9),
            _ => unreachable!(),
        }
    }

    #[test]
    fn reservoir_ladder_lowers_k_to_the_floor() {
        let spec = FilterSpec::reservoir("t", Micros::from_secs(1), 8)
            .with_shed_headroom(ShedHeadroom::rungs(4).with_floor_fraction(0.25));
        let ks: Vec<u32> = (0..=4)
            .map(|r| match spec.degraded(r).unwrap().kind {
                FilterKind::Reservoir { k, .. } => k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ks[0], 8);
        assert_eq!(ks[4], 2, "floor = ceil(8 * 0.25)");
        assert!(ks.windows(2).all(|w| w[1] <= w[0]), "monotone: {ks:?}");
        for r in 0..=4 {
            spec.degraded(r).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn stratified_ladder_lowers_rates_and_stays_valid() {
        let spec = FilterSpec::stratified_sample("t", Micros::from_secs(1), 0.2, 80.0, 20.0)
            .with_shed_headroom(ShedHeadroom::rungs(3));
        for r in 0..=3 {
            let d = spec.degraded(r).unwrap();
            d.validate().unwrap();
            match d.kind {
                FilterKind::StratifiedSample {
                    high_pct, low_pct, ..
                } => {
                    assert!((20.0..=80.0).contains(&high_pct));
                    assert!((5.0..=20.0).contains(&low_pct));
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn degraded_keeps_headroom_label_and_tolerance() {
        let spec = FilterSpec::delta("t", 2.0, 0.5)
            .with_latency_tolerance(Micros::from_millis(5))
            .with_label("L")
            .with_shed_headroom(ShedHeadroom::rungs(2));
        let d = spec.degraded(1).unwrap();
        assert_eq!(d.shed_headroom(), spec.shed_headroom());
        assert_eq!(d.label, spec.label);
        assert_eq!(d.latency_tolerance, spec.latency_tolerance);
    }

    #[test]
    fn headroom_validation() {
        assert!(FilterSpec::delta("t", 2.0, 0.5)
            .with_shed_headroom(ShedHeadroom {
                rungs: 0,
                max_slack: None,
                floor_fraction: None,
            })
            .validate()
            .is_err());
        assert!(FilterSpec::delta("t", 2.0, 0.5)
            .with_shed_headroom(ShedHeadroom::rungs(2).with_floor_fraction(0.0))
            .validate()
            .is_err());
        assert!(FilterSpec::delta("t", 2.0, 0.5)
            .with_shed_headroom(ShedHeadroom::rungs(2).with_max_slack(f64::NAN))
            .validate()
            .is_err());
        assert!(FilterSpec::delta("t", 2.0, 0.5)
            .with_shed_headroom(ShedHeadroom::rungs(2))
            .validate()
            .is_ok());
    }

    #[test]
    fn push_outcome_accessors() {
        assert!(PushOutcome::Accepted.is_accepted());
        assert!(!PushOutcome::Throttled.is_accepted());
    }
}
