//! Sharded multi-threaded execution behind the sink seam.
//!
//! A [`GroupEngine`] is inherently single-threaded: candidate admission is
//! a sequential scan of the stream and the shared global state (utilities,
//! regions, pending outputs) is one group's state. What *does* parallelise
//! is the filter-group population: independent groups share nothing but
//! the input stream. [`ShardedEngine`] exploits exactly that — it hosts
//! any number of *routes* (one [`GroupEngine`] each, identified by a
//! string key), hash-partitions the routes across `N` worker shards, and
//! fans every input tuple out to the shards that own at least one route.
//! Each shard is a plain OS thread running its engines single-threaded,
//! fed by a bounded channel (backpressure, bounded memory), and the
//! emissions stream back to the caller where they are **merged in
//! deterministic sequence order** — input step first, route index second —
//! into any [`EmissionSink`].
//!
//! ```text
//!                      ┌─ shard 0 ── GroupEngine(route 0), GroupEngine(route 3) ─┐
//!   Tuple ──broadcast──┼─ shard 1 ── GroupEngine(route 1)                        ├─ merge ─▶ EmissionSink
//!   (bounded channels) └─ shard 2 ── GroupEngine(route 2), GroupEngine(route 4) ─┘ (step, route) order
//! ```
//!
//! Because the merge order depends only on `(input step, route index)` and
//! never on shard count, timing, or batch boundaries, the output byte
//! sequence is **identical for every parallelism level** — and for a
//! single route it is byte-for-byte the output of running that
//! [`GroupEngine`] directly (`tests/tests/sink_equivalence.rs` pins both
//! properties across every `Algorithm` × `OutputStrategy` combination).
//! One qualification: the guarantee covers every configuration in which
//! the hosted engines are themselves input-deterministic. Under a
//! [`TimeConstraint`](crate::cuts::TimeConstraint), timely-cut decisions
//! consult the wall-clock-trained run-time predictor, so *any* two runs —
//! inline or sharded — may cut at different points; sharding adds no new
//! nondeterminism, but cannot remove the clock from that path either.
//!
//! ## Batching and delivery latency
//!
//! Tuples are staged in an input buffer and shipped to the shards in
//! batches of [`batch_size`](ShardedEngineBuilder::batch_size); up to
//! [`queue_depth`](ShardedEngineBuilder::queue_depth) batches are kept in
//! flight per shard before the caller blocks and merges. Emissions for a
//! step are therefore delivered to the sink up to
//! `batch_size × (queue_depth + 1)` steps after the push that released
//! them (and always by [`finish_into`](ShardedEngine::finish_into), which
//! drains everything). The emission *sequence* is unaffected; only the
//! sink-call boundaries move.
//!
//! ## Errors
//!
//! Stream-order violations ([`Error::OutOfOrder`] /
//! [`Error::NonContiguousSeq`]) and [`Error::Finished`] are validated
//! eagerly on the caller thread, exactly like [`GroupEngine`]. Errors
//! raised inside a shard (e.g. [`Error::MissingValue`]) surface on the
//! next merge — emissions already released by other steps are still
//! delivered, then the first error in `(step, route)` order is returned
//! and the engine refuses further input.

use crate::batch::TupleBatch;
use crate::candidate::FilterId;
use crate::engine::{ControlOp, GroupEngine, GroupEngineBuilder};
use crate::error::Error;
use crate::metrics::EngineMetrics;
use crate::plan::EvaluatorTier;
use crate::quality::FilterSpec;
use crate::schema::Schema;
use crate::sink::{EmissionSink, StreamOperator, VecSink};
use crate::snapshot::{EngineSnapshot, GroupSnapshot};
use crate::time::Micros;
use crate::tuple::Tuple;
use std::collections::{BTreeSet, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One step's worth of emissions from one shard, tagged per route.
#[derive(Debug, Default)]
struct StepOut {
    /// Wall-clock cost of this step on the shard (all of its routes).
    cpu: Duration,
    /// Non-empty emission batches, in ascending route order.
    batches: Vec<(u32, Vec<crate::engine::Emission>)>,
}

/// Worker → caller reply for one input batch.
#[derive(Debug)]
struct BatchReply {
    /// One entry per tuple of the input batch (empty after an error).
    steps: Vec<StepOut>,
    /// First failure, as (step offset in batch, route index, error).
    error: Option<(usize, u32, Error)>,
}

/// Worker → caller reply for the finish request.
#[derive(Debug)]
struct FinishReply {
    /// Tail emissions per route, in ascending route order.
    tail: Vec<(u32, Vec<crate::engine::Emission>)>,
    /// Final metrics per route, in ascending route order.
    metrics: Vec<(u32, EngineMetrics)>,
    /// First failure during finish, as (route index, error).
    error: Option<(u32, Error)>,
}

#[derive(Debug)]
enum ToShard {
    Batch(Vec<Tuple>),
    /// A columnar tuple batch, shared across shards as one `Arc` (the
    /// broadcast clones the pointer, never the columns). The worker runs
    /// it through each route's batch-native path and replies with the
    /// same per-step layout as [`ToShard::Batch`], so the caller-side
    /// merge is oblivious to which representation was shipped.
    Columnar(Arc<TupleBatch>),
    /// A control-plane op for one route, interleaved with the data
    /// batches so it lands at the exact stream position it was issued at
    /// (the caller flushes its partial batch first). The worker queues it
    /// on the route's engine, which applies it at its next safe point —
    /// identical to the inline path.
    Control(u32, ControlOp),
    /// Checkpoint barrier: the caller has merged everything in flight, so
    /// every hosted engine sits exactly at the barrier position. The
    /// worker crosses each engine's safe-point boundary
    /// (`GroupEngine::snapshot_into`) and replies with the per-route
    /// boundary tails and [`GroupSnapshot`]s.
    Checkpoint,
    /// Fault injection: the worker exits immediately without replying —
    /// indistinguishable, from the caller's side, from a panicked worker
    /// thread (both disconnect the channels).
    Die,
    Finish,
}

/// Worker → caller reply for the checkpoint barrier.
#[derive(Debug)]
struct CheckpointReply {
    /// Boundary-drain emissions per route, in ascending route order.
    tail: Vec<(u32, Vec<crate::engine::Emission>)>,
    /// Safe-point snapshots per route, in ascending route order.
    snaps: Vec<(u32, GroupSnapshot)>,
    /// First failure while draining, as (route index, error).
    error: Option<(u32, Error)>,
}

/// One entry of the bounded post-checkpoint replay log: everything the
/// caller shipped to the workers since the last checkpoint, in channel
/// order, so a respawned shard can be brought back to the live stream
/// position deterministically.
#[derive(Debug)]
enum ReplayEntry {
    /// A dispatched input batch (every shard received it).
    Batch(Vec<Tuple>),
    /// A dispatched columnar batch (every shard received it; the log
    /// holds the same shared `Arc` the workers got).
    Columnar(Arc<TupleBatch>),
    /// A control op (only the owning shard received it).
    Control(u32, ControlOp),
}

/// Caller-side mirror of one route's roster, used to validate control ops
/// and assign stable [`FilterId`]s without a round-trip to the worker.
#[derive(Debug)]
struct RouteControl {
    schema: Schema,
    algorithm: crate::engine::Algorithm,
    /// The evaluator tier this route's engine runs (worker rebuilds after
    /// a crash keep the tier the route was configured with).
    tier: EvaluatorTier,
    /// Live filter ids (as the worker's engine will see them once every
    /// queued op applies).
    live: BTreeSet<u32>,
    /// The next never-used filter id on this route.
    next_id: u32,
}

#[derive(Debug)]
enum FromShard {
    Batch(BatchReply),
    Checkpointed(CheckpointReply),
    Finished(FinishReply),
}

/// The deterministic route-key hash (FNV-1a finished with splitmix64).
///
/// Exposed so deployment tooling can predict placement: a route with key
/// `k` runs on shard `shard_index(k, n)` of an `n`-shard engine.
pub fn shard_index(key: &str, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h % shards.max(1) as u64) as usize
}

/// Builder for [`ShardedEngine`] (see [`ShardedEngine::builder`]).
#[derive(Debug, Default)]
pub struct ShardedEngineBuilder {
    parallelism: usize,
    batch_size: usize,
    queue_depth: usize,
    track_step_costs: bool,
    replay_capacity: Option<usize>,
    max_respawns: Option<u32>,
    routes: Vec<(String, GroupEngineBuilder)>,
}

/// Default bound of the post-checkpoint replay log, in tuples (see
/// [`ShardedEngineBuilder::replay_capacity`]).
pub const DEFAULT_REPLAY_CAPACITY: usize = 65_536;

/// Default worker-respawn budget (see
/// [`ShardedEngineBuilder::max_respawns`]).
pub const DEFAULT_MAX_RESPAWNS: u32 = 4;

impl ShardedEngineBuilder {
    /// Adds a filter group as a route. The key determines shard placement
    /// (via [`shard_index`]) and must be unique; the route's index — its
    /// position in insertion order — determines its slot in the merged
    /// output order.
    pub fn route(mut self, key: impl Into<String>, engine: GroupEngineBuilder) -> Self {
        self.routes.push((key.into(), engine));
        self
    }

    /// Number of worker shards (default 1). Shards that end up owning no
    /// route are never spawned, so `n` larger than the route count costs
    /// nothing.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n;
        self
    }

    /// Tuples per batch shipped to the shards (default 128). Larger
    /// batches amortise channel traffic; smaller ones reduce delivery
    /// latency.
    pub fn batch_size(mut self, tuples: usize) -> Self {
        self.batch_size = tuples;
        self
    }

    /// Batches kept in flight per shard before a push blocks and merges
    /// (default 2). This bounds the engine's buffering to
    /// `batch_size × (queue_depth + 1)` tuples per shard.
    pub fn queue_depth(mut self, batches: usize) -> Self {
        self.queue_depth = batches;
        self
    }

    /// Record per-step `(arrival timestamp, CPU cost)` samples, summed
    /// across shards, for the caller to drain via
    /// [`ShardedEngine::take_step_costs`] (default off). Middleware uses
    /// this to feed flow-control monitors without touching the data path.
    pub fn track_step_costs(mut self, on: bool) -> Self {
        self.track_step_costs = on;
        self
    }

    /// Bound of the post-checkpoint replay log, in tuple-equivalents
    /// (one per tuple, one per control op; default
    /// [`DEFAULT_REPLAY_CAPACITY`]). The engine logs every dispatched
    /// batch and control op since the last [`checkpoint`]
    /// (ShardedEngine::checkpoint) so a crashed worker can be respawned
    /// and replayed; once the log would exceed this bound it is dropped —
    /// memory stays bounded, but worker respawn is impossible until the
    /// next checkpoint resets the log. Checkpoint at least every
    /// `replay_capacity` tuples to keep the recovery guarantee live.
    /// `0` is honoured literally: nothing is ever logged and worker
    /// respawn is effectively disabled (a death always surfaces as an
    /// error).
    ///
    /// [`checkpoint`]: ShardedEngine::checkpoint
    pub fn replay_capacity(mut self, tuples: usize) -> Self {
        self.replay_capacity = Some(tuples);
        self
    }

    /// Worker-respawn budget (default [`DEFAULT_MAX_RESPAWNS`]): how many
    /// times crashed shard workers may be rebuilt from the last checkpoint
    /// over the engine's lifetime before a death is reported as an error
    /// instead. The budget guards against crash loops (a worker that dies
    /// deterministically on replay would otherwise respawn forever).
    pub fn max_respawns(mut self, n: u32) -> Self {
        self.max_respawns = Some(n);
        self
    }

    /// Builds the engines, partitions them across shards and spawns the
    /// worker threads.
    ///
    /// # Errors
    /// * [`Error::InvalidConfig`] without routes or with duplicate keys,
    /// * any [`GroupEngineBuilder::build`] error from a route.
    pub fn build(self) -> Result<ShardedEngine, Error> {
        if self.routes.is_empty() {
            return Err(Error::InvalidConfig {
                reason: "a sharded engine needs at least one route".into(),
            });
        }
        for (i, (key, _)) in self.routes.iter().enumerate() {
            if self.routes[..i].iter().any(|(k, _)| k == key) {
                return Err(Error::InvalidConfig {
                    reason: format!("duplicate route key `{key}`"),
                });
            }
        }
        let parallelism = self.parallelism.max(1);
        let batch_size = if self.batch_size == 0 {
            128
        } else {
            self.batch_size
        };
        let queue_depth = self.queue_depth.max(1);

        // Caller-side roster mirrors, so control ops validate and assign
        // ids without a worker round-trip.
        let mut controls = Vec::with_capacity(self.routes.len());
        for (_, builder) in &self.routes {
            let roster = builder.resolve_roster()?;
            controls.push(RouteControl {
                schema: builder.schema().clone(),
                algorithm: builder.configured_algorithm(),
                tier: builder.configured_evaluator(),
                live: roster.iter().map(|(id, _)| id.index() as u32).collect(),
                next_id: roster.last().map_or(0, |(id, _)| id.index() as u32 + 1),
            });
        }

        // The recovery baseline: a worker that dies before the first
        // checkpoint is rebuilt from the routes' never-fed snapshots —
        // and the initial engines themselves are built by restoring those
        // snapshots, so "fresh build" and "recovery rebuild" are one code
        // path that cannot drift apart.
        let mut last_checkpoint = Vec::with_capacity(self.routes.len());
        let mut route_keys = Vec::with_capacity(self.routes.len());
        for (key, builder) in &self.routes {
            last_checkpoint.push(builder.initial_snapshot()?);
            route_keys.push(key.clone());
        }
        let mut engines = Vec::with_capacity(last_checkpoint.len());
        for (g, ctl) in last_checkpoint.iter().zip(&controls) {
            engines.push(GroupEngine::restore_with_tier(g, ctl.tier)?);
        }
        let (shards, route_shard) = spawn_shards(parallelism, &route_keys, engines, queue_depth)?;
        Ok(ShardedEngine {
            shards,
            n_routes: route_keys.len(),
            route_keys,
            parallelism,
            batch_size,
            queue_depth,
            track_step_costs: self.track_step_costs,
            buf: Vec::with_capacity(batch_size),
            in_flight: VecDeque::new(),
            input_tuples: 0,
            last_ts: None,
            last_seq: None,
            finished: false,
            poisoned: None,
            controls,
            route_shard,
            staged: VecSink::new(),
            route_metrics: Vec::new(),
            step_costs: Vec::new(),
            merge_scratch: Vec::new(),
            last_checkpoint,
            replay_log: Vec::new(),
            replay_cost: 0,
            replay_capacity: self.replay_capacity.unwrap_or(DEFAULT_REPLAY_CAPACITY),
            replay_overflowed: false,
            merged_since_ckpt: 0,
            max_respawns: self.max_respawns.unwrap_or(DEFAULT_MAX_RESPAWNS),
            respawns_left: self.max_respawns.unwrap_or(DEFAULT_MAX_RESPAWNS),
            respawns_used: 0,
        })
    }
}

/// Partitions the routes across `parallelism` shards by key hash and
/// spawns one worker thread per non-empty shard. Returns the shard
/// handles plus the route-index → handle-index map. Shared by
/// [`ShardedEngineBuilder::build`], [`ShardedEngine::restore`] and the
/// internal worker-respawn path (which spawns a single shard through
/// [`spawn_worker`]).
fn spawn_shards(
    parallelism: usize,
    route_keys: &[String],
    engines: Vec<GroupEngine>,
    queue_depth: usize,
) -> Result<(Vec<ShardHandle>, Vec<usize>), Error> {
    let mut assignment: Vec<Vec<(u32, GroupEngine)>> = Vec::new();
    assignment.resize_with(parallelism, Vec::new);
    let mut shard_of_route = vec![0usize; route_keys.len()];
    for (idx, (key, engine)) in route_keys.iter().zip(engines).enumerate() {
        let shard = shard_index(key, parallelism);
        shard_of_route[idx] = shard;
        assignment[shard].push((idx as u32, engine));
    }
    let mut shards = Vec::new();
    let mut handle_of_shard: Vec<Option<usize>> = vec![None; parallelism];
    for (shard_no, slots) in assignment.into_iter().enumerate() {
        if slots.is_empty() {
            continue;
        }
        handle_of_shard[shard_no] = Some(shards.len());
        let routes: Vec<u32> = slots.iter().map(|(idx, _)| *idx).collect();
        let (tx, rx, join) = spawn_worker(shard_no, slots, queue_depth)?;
        shards.push(ShardHandle {
            tx: Some(tx),
            rx,
            join: Some(join),
            routes,
            shard_no,
        });
    }
    let route_shard: Vec<usize> = shard_of_route
        .into_iter()
        .map(|s| handle_of_shard[s].expect("every route's shard was spawned"))
        .collect();
    Ok((shards, route_shard))
}

/// Spawns one shard worker thread over `engines`, returning its channel
/// endpoints and join handle.
///
/// Capacities are chosen so a worker can always park one more reply than
/// the caller keeps in flight: the worker never blocks on its reply
/// channel, therefore always drains its input channel, therefore the
/// caller's send never deadlocks. The same margin is what lets the
/// respawn path replay a full in-flight window into a fresh worker
/// without draining the live merges first.
#[allow(clippy::type_complexity)]
fn spawn_worker(
    shard_no: usize,
    engines: Vec<(u32, GroupEngine)>,
    queue_depth: usize,
) -> Result<(SyncSender<ToShard>, Receiver<FromShard>, JoinHandle<()>), Error> {
    let (tx, rx) = sync_channel::<ToShard>(queue_depth + 1);
    let (reply_tx, reply_rx) = sync_channel::<FromShard>(queue_depth + 2);
    let join = std::thread::Builder::new()
        .name(format!("gasf-shard-{shard_no}"))
        .spawn(move || shard_worker(engines, rx, reply_tx))
        .map_err(|e| Error::InvalidConfig {
            reason: format!("failed to spawn shard worker: {e}"),
        })?;
    Ok((tx, reply_rx, join))
}

#[derive(Debug)]
struct ShardHandle {
    /// `None` once the engine shuts down (dropping it closes the worker).
    tx: Option<SyncSender<ToShard>>,
    rx: Receiver<FromShard>,
    join: Option<JoinHandle<()>>,
    /// Route indices this shard owns, ascending (what a respawn rebuilds).
    routes: Vec<u32>,
    /// The stable shard number (names the worker thread across respawns).
    shard_no: usize,
}

/// A hash-partitioned, multi-threaded host for independent filter groups,
/// with deterministic in-order emission merging.
///
/// See the [module documentation](self) for the execution model. Built via
/// [`ShardedEngine::builder`] (several routes) or
/// [`GroupEngineBuilder::build_sharded`] (one group moved onto a worker
/// thread).
///
/// ```rust
/// use gasf_core::prelude::*;
///
/// # fn main() -> Result<(), gasf_core::Error> {
/// let schema = Schema::new(["t"]);
/// let group = |delta: f64| {
///     GroupEngine::builder(schema.clone())
///         .filter(FilterSpec::delta("t", delta, delta * 0.4))
///         .filter(FilterSpec::delta("t", delta * 1.5, delta * 0.6))
/// };
/// let mut engine = ShardedEngine::builder()
///     .parallelism(2)
///     .route("coarse", group(4.0))
///     .route("fine", group(2.0))
///     .build()?;
///
/// let mut b = TupleBuilder::new(&schema);
/// let tuples = (0..200).map(|i| {
///     b.at_millis(10 * (i + 1)).set("t", (i as f64 * 0.7).sin() * 6.0).build().unwrap()
/// });
/// let mut out = VecSink::new();
/// engine.run_into(tuples, &mut out)?;
/// assert!(!out.is_empty());
/// assert_eq!(engine.metrics().input_tuples, 2 * 200); // both routes saw the stream
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<ShardHandle>,
    n_routes: usize,
    batch_size: usize,
    queue_depth: usize,
    track_step_costs: bool,
    /// Input staging buffer (dispatched when `batch_size` is reached).
    buf: Vec<Tuple>,
    /// Arrival timestamps of each dispatched-but-unmerged batch.
    in_flight: VecDeque<Vec<Micros>>,
    input_tuples: u64,
    last_ts: Option<Micros>,
    last_seq: Option<u64>,
    finished: bool,
    /// First shard-side error observed; once set the engine refuses
    /// further input (only [`finish_into`](ShardedEngine::finish_into)
    /// remains, to drain and join the workers).
    poisoned: Option<Error>,
    /// Caller-side roster mirror per route (control-op validation and
    /// [`FilterId`] assignment).
    controls: Vec<RouteControl>,
    /// Which spawned shard handle owns each route.
    route_shard: Vec<usize>,
    /// Emissions merged while servicing a control op (the caller has no
    /// sink at that moment); delivered at the start of the next
    /// push/finish, preserving the emission sequence exactly.
    staged: VecSink,
    /// Per-route final metrics, in route order (populated at finish).
    route_metrics: Vec<EngineMetrics>,
    /// Undrained `(arrival, cpu)` samples when tracking is on.
    step_costs: Vec<(Micros, Duration)>,
    /// Reused per-step merge buffer.
    merge_scratch: Vec<(u32, Vec<crate::engine::Emission>)>,
    /// Route keys in route-index order (drive shard placement; kept for
    /// checkpoints and respawns).
    route_keys: Vec<String>,
    /// The configured worker-shard count (shards owning no route are
    /// elided from `shards`, but placement math uses this).
    parallelism: usize,
    /// Per-route safe-point snapshots from the last checkpoint barrier
    /// (never-fed initial snapshots until the first checkpoint) — what a
    /// crashed worker is rebuilt from.
    last_checkpoint: Vec<GroupSnapshot>,
    /// Everything shipped to the workers since the last checkpoint, in
    /// channel order (see [`ReplayEntry`]).
    replay_log: Vec<ReplayEntry>,
    /// Cost of the replay log in tuple-equivalents (one per tuple, one
    /// per control op), so churn-heavy streams stay bounded too.
    replay_cost: usize,
    /// Bound on `replay_cost`; exceeding it drops the log (memory stays
    /// bounded, respawn is refused until the next checkpoint).
    replay_capacity: usize,
    replay_overflowed: bool,
    /// Batches merged (delivered to a sink) since the last checkpoint —
    /// how many replayed replies a respawned worker must discard.
    merged_since_ckpt: usize,
    /// The configured respawn budget (carried into checkpoints so a
    /// restored process keeps its fault-tolerance envelope).
    max_respawns: u32,
    /// Remaining worker-respawn budget.
    respawns_left: u32,
    /// Worker respawns performed so far.
    respawns_used: u32,
}

impl ShardedEngine {
    /// Starts building a sharded engine.
    pub fn builder() -> ShardedEngineBuilder {
        ShardedEngineBuilder::default()
    }

    /// Number of routes (filter groups) hosted.
    pub fn routes(&self) -> usize {
        self.n_routes
    }

    /// Number of worker shards actually spawned (shards owning no route
    /// are elided, so this is `min(parallelism, routes)` or less).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total input tuples accepted so far.
    pub fn input_tuples(&self) -> u64 {
        self.input_tuples
    }

    /// Aggregated metrics across every route, summed field-wise.
    ///
    /// Per-route metrics live on the worker threads while the stream is
    /// open, so before [`finish_into`](Self::finish_into) only
    /// `input_tuples` is populated (counting each route's view of the
    /// stream); after finish the aggregate is complete.
    pub fn metrics(&self) -> EngineMetrics {
        let mut total = EngineMetrics::default();
        if self.route_metrics.is_empty() {
            total.input_tuples = self.input_tuples * self.n_routes as u64;
            return total;
        }
        for m in &self.route_metrics {
            total.merge(m);
        }
        total
    }

    /// Final per-route metrics, in route order. Empty until
    /// [`finish_into`](Self::finish_into) completes.
    pub fn route_metrics(&self) -> &[EngineMetrics] {
        &self.route_metrics
    }

    /// Drains the per-step `(arrival timestamp, CPU cost)` samples merged
    /// since the last call. CPU is the wall-clock filtering cost of the
    /// step summed across shards. Always empty unless the engine was built
    /// with [`track_step_costs`](ShardedEngineBuilder::track_step_costs).
    pub fn take_step_costs(&mut self) -> Vec<(Micros, Duration)> {
        std::mem::take(&mut self.step_costs)
    }

    // ------------------------------------------------------------------
    // fault tolerance: checkpoint barriers, worker respawn, restore
    // ------------------------------------------------------------------

    /// Takes a checkpoint: a barrier that flushes the partially staged
    /// batch, merges every in-flight batch into `sink`, then crosses each
    /// route engine's safe-point boundary (the boundary drains land in
    /// `sink`, in route order) and collects the per-route
    /// [`GroupSnapshot`]s into one [`EngineSnapshot`].
    ///
    /// The checkpoint serves two recovery paths:
    ///
    /// * **worker respawn** (internal, transparent): a shard whose worker
    ///   thread dies — a panic, or [`kill_shard`](Self::kill_shard) fault
    ///   injection — is rebuilt from these snapshots and the bounded
    ///   replay log re-feeds the post-checkpoint suffix, with output
    ///   byte-identical to a fault-free run;
    /// * **full restore** (external): persist the returned snapshot, and
    ///   after a process crash rebuild the whole engine with
    ///   [`restore`](Self::restore), replaying the suffix from the
    ///   caller's own log.
    ///
    /// Checkpointing also resets the replay log, so its memory is bounded
    /// by the checkpoint interval.
    ///
    /// # Errors
    /// [`Error::Finished`] after the stream ended, or the first pending
    /// shard error (a failed checkpoint poisons the engine like any other
    /// shard error).
    pub fn checkpoint<S: EmissionSink>(&mut self, sink: &mut S) -> Result<EngineSnapshot, Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        self.deliver_staged(sink);
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        // Barrier: every shard must sit exactly at the checkpoint position.
        if !self.buf.is_empty() {
            if let Err(e) = self.dispatch_batch() {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        }
        while !self.in_flight.is_empty() {
            if let Err(e) = self.merge_oldest(sink) {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        }
        // Send the barrier message to every shard first (like finish),
        // so the per-shard snapshot drains run concurrently, then collect
        // — respawning any worker found dead at the barrier.
        let mut tails: Vec<(u32, Vec<crate::engine::Emission>)> = Vec::new();
        let mut snaps: Vec<Option<GroupSnapshot>> = (0..self.n_routes).map(|_| None).collect();
        for si in 0..self.shards.len() {
            loop {
                let sent = match self.shards[si].tx.as_ref() {
                    Some(tx) => tx.send(ToShard::Checkpoint).is_ok(),
                    None => false,
                };
                if sent {
                    break;
                }
                if let Err(e) = self.recover_shard(si) {
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
            }
        }
        for si in 0..self.shards.len() {
            let reply = loop {
                match self.shards[si].rx.recv() {
                    Ok(FromShard::Checkpointed(reply)) => break reply,
                    // Stale replies cannot exist at the barrier (everything
                    // in flight was merged above); skip defensively.
                    Ok(_) => continue,
                    Err(_) => {
                        // Worker died between barrier and snapshot: respawn
                        // (the replay discards everything — it is all
                        // merged) and re-issue the barrier message.
                        match self.recover_shard(si) {
                            Ok(()) => {
                                let sent = self.shards[si]
                                    .tx
                                    .as_ref()
                                    .is_some_and(|tx| tx.send(ToShard::Checkpoint).is_ok());
                                if !sent {
                                    continue; // recv fails again → recover again
                                }
                            }
                            Err(e) => {
                                self.poisoned = Some(e.clone());
                                return Err(e);
                            }
                        }
                    }
                }
            };
            if let Some((_, e)) = reply.error {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
            tails.extend(reply.tail);
            for (route, s) in reply.snaps {
                snaps[route as usize] = Some(s);
            }
        }
        tails.sort_unstable_by_key(|&(route, _)| route);
        for (_, batch) in &tails {
            if !batch.is_empty() {
                sink.accept_batch(batch);
            }
        }
        let snaps: Vec<GroupSnapshot> = snaps
            .into_iter()
            .map(|s| s.expect("every live shard snapshots every route it owns"))
            .collect();
        self.last_checkpoint = snaps.clone();
        self.replay_log.clear();
        self.replay_cost = 0;
        self.replay_overflowed = false;
        self.merged_since_ckpt = 0;
        Ok(EngineSnapshot {
            snaps,
            route_keys: self.route_keys.clone(),
            parallelism: self.parallelism,
            batch_size: self.batch_size,
            queue_depth: self.queue_depth,
            track_step_costs: self.track_step_costs,
            replay_capacity: self.replay_capacity,
            max_respawns: self.max_respawns,
            last_ts: self.last_ts,
            last_seq: self.last_seq,
            input_tuples: self.input_tuples,
        })
    }

    /// Rebuilds a whole sharded engine from a checkpoint — the
    /// full-process recovery path. Every route engine is restored at its
    /// snapshot boundary ([`GroupEngine::restore`]), the worker topology
    /// is respawned with the same route placement, and the caller-side
    /// stream position resumes at the checkpoint, so the only input the
    /// restored engine accepts is the post-checkpoint suffix — which
    /// reproduces the fault-free run byte for byte
    /// (`tests/tests/recovery_equivalence.rs`).
    ///
    /// The restored engine starts with a fresh replay log and a full
    /// respawn budget, sized by the configuration the snapshot carries
    /// (`replay_capacity`, `max_respawns`) — a recovered process keeps
    /// the fault-tolerance envelope of the one that crashed.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for a snapshot without routes, or any
    /// restore/spawn failure.
    pub fn restore(snap: &EngineSnapshot) -> Result<ShardedEngine, Error> {
        if snap.snaps.is_empty() || snap.snaps.len() != snap.route_keys.len() {
            return Err(Error::InvalidConfig {
                reason: "engine snapshot holds no routes".into(),
            });
        }
        let mut controls = Vec::with_capacity(snap.snaps.len());
        let mut engines = Vec::with_capacity(snap.snaps.len());
        for g in &snap.snaps {
            controls.push(RouteControl {
                schema: g.schema().clone(),
                algorithm: g.algorithm(),
                // Snapshots carry no tier (compilation is a pure function
                // of the roster); restored processes run the default.
                tier: EvaluatorTier::default(),
                live: g.roster_iter().map(|(id, _)| id.index() as u32).collect(),
                next_id: g.next_filter_id,
            });
            engines.push(GroupEngine::restore(g)?);
        }
        let parallelism = snap.parallelism.max(1);
        let (shards, route_shard) =
            spawn_shards(parallelism, &snap.route_keys, engines, snap.queue_depth)?;
        Ok(ShardedEngine {
            shards,
            n_routes: snap.snaps.len(),
            route_keys: snap.route_keys.clone(),
            parallelism,
            batch_size: snap.batch_size,
            queue_depth: snap.queue_depth,
            track_step_costs: snap.track_step_costs,
            buf: Vec::with_capacity(snap.batch_size),
            in_flight: VecDeque::new(),
            input_tuples: snap.input_tuples,
            last_ts: snap.last_ts,
            last_seq: snap.last_seq,
            finished: false,
            poisoned: None,
            controls,
            route_shard,
            staged: VecSink::new(),
            route_metrics: Vec::new(),
            step_costs: Vec::new(),
            merge_scratch: Vec::new(),
            last_checkpoint: snap.snaps.clone(),
            replay_log: Vec::new(),
            replay_cost: 0,
            replay_capacity: snap.replay_capacity,
            replay_overflowed: false,
            merged_since_ckpt: 0,
            max_respawns: snap.max_respawns,
            respawns_left: snap.max_respawns,
            respawns_used: 0,
        })
    }

    /// Fault injection: simulates a hard crash of one worker shard (for
    /// tests, chaos drills and the `failover` example). The worker exits
    /// without replying, exactly as if its thread had panicked; the
    /// engine detects the death on the next send or merge that touches
    /// the shard and respawns it transparently from the last checkpoint
    /// (see [`checkpoint`](Self::checkpoint)). Output remains
    /// byte-identical to a fault-free run as long as the respawn budget
    /// and the replay log hold out.
    ///
    /// # Errors
    /// [`Error::Finished`] after the stream ended, or
    /// [`Error::InvalidConfig`] for an unknown shard index.
    pub fn kill_shard(&mut self, shard: usize) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        if shard >= self.shards.len() {
            return Err(Error::InvalidConfig {
                reason: format!("unknown shard index {shard} (have {})", self.shards.len()),
            });
        }
        if let Some(tx) = self.shards[shard].tx.as_ref() {
            // An already-dead worker ignores the message either way.
            let _ = tx.send(ToShard::Die);
        }
        Ok(())
    }

    /// Worker respawns performed so far (0 in a fault-free run).
    pub fn respawns(&self) -> u32 {
        self.respawns_used
    }

    /// Reserves `cost` tuple-equivalents in the bounded replay log,
    /// reporting whether the entry may be appended. Past the bound the
    /// log is useless, so it is dropped — memory stays bounded and
    /// respawn is refused until the next checkpoint resets it.
    fn try_log_replay(&mut self, cost: usize) -> bool {
        if self.replay_overflowed {
            return false;
        }
        if self.replay_cost.saturating_add(cost) > self.replay_capacity {
            self.replay_log.clear();
            self.replay_log.shrink_to_fit();
            self.replay_cost = 0;
            self.replay_overflowed = true;
            return false;
        }
        self.replay_cost += cost;
        true
    }

    /// Rebuilds a dead shard worker from the last checkpoint and replays
    /// the post-checkpoint suffix into it. Replies for batches the caller
    /// already merged are discarded as they stream back (their emissions
    /// were delivered before the crash, byte-identically — the engines
    /// are deterministic); replies for the still-unmerged window stay
    /// queued for the live merge path, so callers simply re-recv after a
    /// successful recovery.
    fn recover_shard(&mut self, si: usize) -> Result<(), Error> {
        if self.replay_overflowed {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "shard worker {} died after the replay log overflowed its \
                     {}-tuple bound; checkpoint more often or raise replay_capacity",
                    self.shards[si].shard_no, self.replay_capacity
                ),
            });
        }
        if self.respawns_left == 0 {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "shard worker {} died and the respawn budget is exhausted \
                     ({} respawns used)",
                    self.shards[si].shard_no, self.respawns_used
                ),
            });
        }
        self.respawns_left -= 1;
        self.respawns_used += 1;
        // Reap the dead worker.
        self.shards[si].tx = None;
        if let Some(join) = self.shards[si].join.take() {
            let _ = join.join();
        }
        // Rebuild this shard's engines at the last checkpoint boundary.
        let routes = self.shards[si].routes.clone();
        let mut engines = Vec::with_capacity(routes.len());
        for &r in &routes {
            engines.push((
                r,
                GroupEngine::restore_with_tier(
                    &self.last_checkpoint[r as usize],
                    self.controls[r as usize].tier,
                )?,
            ));
        }
        let (tx, rx, join) = spawn_worker(self.shards[si].shard_no, engines, self.queue_depth)?;
        let dead = || Error::InvalidConfig {
            reason: "respawned shard worker died during replay".into(),
        };
        let mut to_discard = self.merged_since_ckpt;
        for entry in &self.replay_log {
            match entry {
                ReplayEntry::Control(route, op) if routes.contains(route) => {
                    tx.send(ToShard::Control(*route, op.clone()))
                        .map_err(|_| dead())?;
                }
                ReplayEntry::Control(..) => {}
                ReplayEntry::Batch(tuples) => {
                    tx.send(ToShard::Batch(tuples.clone()))
                        .map_err(|_| dead())?;
                    // Consume already-merged replies eagerly so the replay
                    // of a long suffix never fills the bounded channels.
                    if to_discard > 0 {
                        match rx.recv() {
                            Ok(FromShard::Batch(_)) => to_discard -= 1,
                            _ => return Err(dead()),
                        }
                    }
                }
                ReplayEntry::Columnar(batch) => {
                    tx.send(ToShard::Columnar(Arc::clone(batch)))
                        .map_err(|_| dead())?;
                    if to_discard > 0 {
                        match rx.recv() {
                            Ok(FromShard::Batch(_)) => to_discard -= 1,
                            _ => return Err(dead()),
                        }
                    }
                }
            }
        }
        self.shards[si].tx = Some(tx);
        self.shards[si].rx = rx;
        self.shards[si].join = Some(join);
        Ok(())
    }

    // ------------------------------------------------------------------
    // subscription control plane
    // ------------------------------------------------------------------

    /// Queues a new filter on route `route`, returning its stable
    /// [`FilterId`] immediately (ids are assigned on the caller thread
    /// from a mirror of the route's roster, and replayed to the worker as
    /// a control message interleaved with the data batches). The filter
    /// joins at the route engine's next safe point — the stream position
    /// at which this call was made — exactly like
    /// [`GroupEngine::add_filter`] inline.
    ///
    /// # Errors
    /// [`Error::Finished`], a pending shard error, an unknown route
    /// ([`Error::InvalidConfig`]), or spec validation errors.
    pub fn add_filter(&mut self, route: usize, spec: FilterSpec) -> Result<FilterId, Error> {
        self.control_guard(route)?;
        let ctl = &self.controls[route];
        let id = FilterId::from_index(ctl.next_id as usize);
        crate::engine::validate_filter(&spec, id, &ctl.schema, ctl.algorithm)?;
        self.send_control(route, ControlOp::Add(id, spec))?;
        let ctl = &mut self.controls[route];
        ctl.live.insert(ctl.next_id);
        ctl.next_id += 1;
        Ok(id)
    }

    /// Queues the removal of a filter from route `route` (see
    /// [`GroupEngine::remove_filter`] for the boundary semantics).
    ///
    /// # Errors
    /// [`Error::Finished`], a pending shard error,
    /// [`Error::UnknownFilter`], or [`Error::InvalidConfig`] when the
    /// removal would empty the route.
    pub fn remove_filter(&mut self, route: usize, id: FilterId) -> Result<(), Error> {
        self.control_guard(route)?;
        let ctl = &self.controls[route];
        if !ctl.live.contains(&(id.index() as u32)) {
            return Err(Error::UnknownFilter { id });
        }
        if ctl.live.len() == 1 {
            return Err(Error::InvalidConfig {
                reason: format!("removing {id} would leave the route empty"),
            });
        }
        self.send_control(route, ControlOp::Remove(id))?;
        self.controls[route].live.remove(&(id.index() as u32));
        Ok(())
    }

    /// Queues a spec replacement for a live filter of route `route` (see
    /// [`GroupEngine::update_filter`]).
    ///
    /// # Errors
    /// [`Error::Finished`], a pending shard error,
    /// [`Error::UnknownFilter`], or spec validation errors.
    pub fn update_filter(
        &mut self,
        route: usize,
        id: FilterId,
        spec: FilterSpec,
    ) -> Result<(), Error> {
        self.control_guard(route)?;
        let ctl = &self.controls[route];
        if !ctl.live.contains(&(id.index() as u32)) {
            return Err(Error::UnknownFilter { id });
        }
        crate::engine::validate_filter(&spec, id, &ctl.schema, ctl.algorithm)?;
        self.send_control(route, ControlOp::Update(id, spec))
    }

    fn control_guard(&self, route: usize) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if route >= self.n_routes {
            return Err(Error::InvalidConfig {
                reason: format!("unknown route index {route} (have {})", self.n_routes),
            });
        }
        Ok(())
    }

    /// Ships a control op to the route's shard at the current stream
    /// position: the partially staged batch is flushed first so the op
    /// lands between the tuples it was issued between, and the in-flight
    /// window is merged down (into the staging buffer — the caller has no
    /// sink here) so channel capacities are never exceeded.
    fn send_control(&mut self, route: usize, op: ControlOp) -> Result<(), Error> {
        if !self.buf.is_empty() {
            self.dispatch_batch()?;
        }
        while self.in_flight.len() > self.queue_depth {
            let mut staged = std::mem::take(&mut self.staged);
            let merged = self.merge_oldest(&mut staged);
            self.staged = staged;
            merged.inspect_err(|e| self.poisoned = Some((*e).clone()))?;
        }
        // Log before shipping: a dead worker is respawned and receives the
        // op through the replay instead of this send.
        if self.try_log_replay(1) {
            self.replay_log
                .push(ReplayEntry::Control(route as u32, op.clone()));
        }
        let si = self.route_shard[route];
        let sent = match self.shards[si].tx.as_ref() {
            Some(tx) => tx.send(ToShard::Control(route as u32, op)).is_ok(),
            None => false,
        };
        if sent {
            Ok(())
        } else {
            self.recover_shard(si)
                .inspect_err(|e| self.poisoned = Some((*e).clone()))
        }
    }

    /// Delivers emissions merged during control ops (kept in sequence
    /// ahead of anything this call merges).
    fn deliver_staged<S: EmissionSink>(&mut self, sink: &mut S) {
        if !self.staged.is_empty() {
            sink.accept_batch(self.staged.as_slice());
            self.staged.clear();
        }
    }

    /// Feeds the next stream tuple, writing any *merged* emissions that
    /// became available into `sink`.
    ///
    /// Ordering is validated eagerly, but the tuple itself is staged and
    /// shipped in batches — emissions released by this step may reach the
    /// sink on a later call (see the [module docs](self) on batching).
    ///
    /// # Errors
    /// Same as [`GroupEngine::push_into`]; shard-side errors surface on
    /// the merge that observes them and poison the engine — every
    /// subsequent push returns the same error.
    pub fn push_into<S: EmissionSink>(&mut self, tuple: Tuple, sink: &mut S) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        self.deliver_staged(sink);
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        crate::engine::validate_stream_order(self.last_ts, self.last_seq, &tuple)?;
        self.last_ts = Some(tuple.timestamp());
        self.last_seq = Some(tuple.seq());
        self.input_tuples += 1;
        self.buf.push(tuple);
        if self.buf.len() >= self.batch_size {
            if let Err(e) = self.dispatch(sink) {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    /// Feeds a batch of tuples (the slice-friendly entry point).
    ///
    /// # Errors
    /// Stops at (and returns) the first tuple that fails, like
    /// [`push_into`](Self::push_into).
    pub fn push_batch<S: EmissionSink>(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        sink: &mut S,
    ) -> Result<(), Error> {
        for t in tuples {
            self.push_into(t, sink)?;
        }
        Ok(())
    }

    /// Feeds a columnar [`TupleBatch`], broadcast to every shard as one
    /// shared `Arc` and consumed by each route through
    /// [`GroupEngine::push_batch_columnar`]'s batch-native path. The
    /// workers reply with per-*row* step outputs, so the caller-side
    /// `(input step, route)` merge — and therefore the emission byte
    /// sequence — is identical to pushing the same rows one at a time.
    ///
    /// Any partially staged single-tuple buffer is flushed first: the
    /// staged tuples precede this batch in the stream. A columnar batch
    /// is one dispatch unit — it is never split by the staging buffer,
    /// and checkpoints/control ops land only at its boundaries.
    ///
    /// # Errors
    /// Same contract as [`push_into`](Self::push_into): ordering of the
    /// batch head is validated eagerly on the caller thread, shard-side
    /// errors surface on the merge that observes them and poison the
    /// engine.
    pub fn push_batch_columnar<S: EmissionSink>(
        &mut self,
        batch: &Arc<TupleBatch>,
        sink: &mut S,
    ) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        self.deliver_staged(sink);
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if batch.is_empty() {
            return Ok(());
        }
        crate::engine::validate_stream_order_at(
            self.last_ts,
            self.last_seq,
            batch.timestamp(0),
            batch.seq(0),
        )?;
        if !self.buf.is_empty() {
            if let Err(e) = self.dispatch_batch() {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        }
        let rows = batch.rows();
        self.last_ts = Some(batch.timestamp(rows - 1));
        self.last_seq = Some(batch.seq(rows - 1));
        self.input_tuples += rows as u64;
        let stamps: Vec<Micros> = if self.track_step_costs {
            batch.timestamps().to_vec()
        } else {
            Vec::new()
        };
        if self.try_log_replay(rows) {
            self.replay_log
                .push(ReplayEntry::Columnar(Arc::clone(batch)));
        }
        for si in 0..self.shards.len() {
            let sent = match self.shards[si].tx.as_ref() {
                Some(tx) => tx.send(ToShard::Columnar(Arc::clone(batch))).is_ok(),
                None => false,
            };
            if !sent {
                // Dead worker: the respawn replays the logged suffix —
                // including this batch — so no re-send is needed.
                if let Err(e) = self.recover_shard(si) {
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
            }
        }
        self.in_flight.push_back(stamps);
        while self.in_flight.len() > self.queue_depth {
            if let Err(e) = self.merge_oldest(sink) {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    /// Ends the stream on every route: drains all in-flight batches,
    /// force-closes and merges each route's tail in route order, collects
    /// the final per-route metrics, flushes `sink` and joins the workers.
    ///
    /// # Errors
    /// Returns [`Error::Finished`] if called twice; otherwise the first
    /// pending shard error.
    pub fn finish_into<S: EmissionSink>(&mut self, sink: &mut S) -> Result<(), Error> {
        if self.finished {
            return Err(Error::Finished);
        }
        self.finished = true;
        self.deliver_staged(sink);
        let mut first_err = self.poisoned.take();
        if first_err.is_none() && !self.buf.is_empty() {
            first_err = self.dispatch_batch().err();
        }
        while !self.in_flight.is_empty() {
            if let Err(e) = self.merge_oldest(sink) {
                first_err.get_or_insert(e);
            }
        }
        for si in 0..self.shards.len() {
            loop {
                let sent = match self.shards[si].tx.as_ref() {
                    Some(tx) => tx.send(ToShard::Finish).is_ok(),
                    None => false,
                };
                if sent {
                    break;
                }
                // Dead worker at finish: respawn it (replaying the suffix)
                // so the stream still ends with a complete, fault-free
                // tail — unless an error is already being reported, in
                // which case respawns are not worth burning.
                if first_err.is_some() {
                    break;
                }
                match self.recover_shard(si) {
                    Ok(()) => continue,
                    Err(e) => {
                        first_err.get_or_insert(e);
                        break;
                    }
                }
            }
        }
        // Collect every shard's tail, then merge across shards by route.
        // On the degraded path (a worker died or errored mid-stream) a
        // shard's channel may still hold batch replies that were never
        // merged; drain past them — their emissions are dropped, which is
        // fine because an error is already being reported.
        let mut tails: Vec<(u32, Vec<crate::engine::Emission>)> = Vec::new();
        let mut metrics: Vec<(u32, EngineMetrics)> = Vec::new();
        for si in 0..self.shards.len() {
            loop {
                match self.shards[si].rx.recv() {
                    Ok(FromShard::Finished(reply)) => {
                        tails.extend(reply.tail);
                        metrics.extend(reply.metrics);
                        if let Some((_, e)) = reply.error {
                            first_err.get_or_insert(e);
                        }
                        break;
                    }
                    Ok(FromShard::Batch(stale)) => {
                        debug_assert!(
                            first_err.is_some(),
                            "stale batch replies only exist on the error path"
                        );
                        if let Some((_, _, e)) = stale.error {
                            first_err.get_or_insert(e);
                        }
                    }
                    Ok(FromShard::Checkpointed(_)) => {
                        // only reachable on a degraded path; nothing to keep
                    }
                    Err(_) => {
                        // Worker died between the Finish send and its reply:
                        // respawn, replay and re-issue Finish.
                        if first_err.is_none() {
                            match self.recover_shard(si) {
                                Ok(()) => {
                                    let sent = self.shards[si]
                                        .tx
                                        .as_ref()
                                        .is_some_and(|tx| tx.send(ToShard::Finish).is_ok());
                                    if sent {
                                        continue;
                                    }
                                }
                                Err(e) => {
                                    first_err.get_or_insert(e);
                                }
                            }
                        }
                        first_err.get_or_insert(Error::InvalidConfig {
                            reason: "shard worker terminated early".into(),
                        });
                        break;
                    }
                }
            }
        }
        tails.sort_unstable_by_key(|&(route, _)| route);
        for (_, batch) in &tails {
            if !batch.is_empty() {
                sink.accept_batch(batch);
            }
        }
        sink.flush();
        metrics.sort_unstable_by_key(|&(route, _)| route);
        self.route_metrics = metrics.into_iter().map(|(_, m)| m).collect();
        self.shutdown();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs an entire stream through every route into `sink`
    /// ([`push_batch`](Self::push_batch) then
    /// [`finish_into`](Self::finish_into)).
    ///
    /// # Errors
    /// Propagates any push/finish error.
    pub fn run_into<S: EmissionSink>(
        &mut self,
        stream: impl IntoIterator<Item = Tuple>,
        sink: &mut S,
    ) -> Result<(), Error> {
        self.push_batch(stream, sink)?;
        self.finish_into(sink)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Ships the staged buffer and keeps `in_flight` at `queue_depth`.
    fn dispatch<S: EmissionSink>(&mut self, sink: &mut S) -> Result<(), Error> {
        self.dispatch_batch()?;
        while self.in_flight.len() > self.queue_depth {
            self.merge_oldest(sink)?;
        }
        Ok(())
    }

    /// Broadcasts the staged buffer to every shard (the last shard takes
    /// the original allocation; `Tuple` clones are `Arc` bumps). The
    /// batch is appended to the bounded replay log first, so a send that
    /// finds a dead worker recovers it — and the replay, which includes
    /// this batch, *is* the delivery.
    fn dispatch_batch(&mut self) -> Result<(), Error> {
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch_size));
        if batch.is_empty() {
            return Ok(());
        }
        let stamps: Vec<Micros> = if self.track_step_costs {
            batch.iter().map(|t| t.timestamp()).collect()
        } else {
            Vec::new()
        };
        if self.try_log_replay(batch.len()) {
            self.replay_log.push(ReplayEntry::Batch(batch.clone()));
        }
        let last = self.shards.len() - 1;
        let mut batch = Some(batch);
        for si in 0..self.shards.len() {
            let payload = if si == last {
                batch.take().expect("one shard takes the original")
            } else {
                batch.as_ref().expect("original kept until last").clone()
            };
            let sent = match self.shards[si].tx.as_ref() {
                Some(tx) => tx.send(ToShard::Batch(payload)).is_ok(),
                None => false,
            };
            if !sent {
                // Dead worker: the respawn replays the logged suffix —
                // including this batch — so no re-send is needed.
                self.recover_shard(si)?;
            }
        }
        self.in_flight.push_back(stamps);
        Ok(())
    }

    /// Receives the oldest in-flight batch's reply from every shard and
    /// feeds the merged emissions to the sink in `(step, route)` order.
    ///
    /// A worker found dead here (disconnected channel — a panicked or
    /// [`kill_shard`](Self::kill_shard)ed thread) is respawned from the
    /// last checkpoint and the replay log brings it back to the live
    /// stream position; its reply for this batch is then taken from the
    /// fresh channel, so the merged output is byte-identical to a
    /// fault-free run.
    fn merge_oldest<S: EmissionSink>(&mut self, sink: &mut S) -> Result<(), Error> {
        let stamps = self
            .in_flight
            .pop_front()
            .expect("merge_oldest called with a batch in flight");
        let mut replies: Vec<BatchReply> = Vec::with_capacity(self.shards.len());
        let mut first_err: Option<(usize, u32, Error)> = None;
        let mut dead_err: Option<Error> = None;
        for si in 0..self.shards.len() {
            let reply = loop {
                match self.shards[si].rx.recv() {
                    Ok(FromShard::Batch(reply)) => break Some(reply),
                    // A worker only sends Finished/Checkpointed in response
                    // to Finish/Checkpoint, never while batches are in
                    // flight — a worker that emits one here is broken.
                    Ok(_) => break None,
                    Err(_) => match self.recover_shard(si) {
                        // The respawn replayed the suffix; the reply for
                        // this batch is queued on the fresh channel.
                        Ok(()) => continue,
                        Err(e) => {
                            dead_err.get_or_insert(e);
                            break None;
                        }
                    },
                }
            };
            match reply {
                Some(reply) => {
                    if let Some(e) = &reply.error {
                        if first_err.as_ref().is_none_or(|f| (e.0, e.1) < (f.0, f.1)) {
                            first_err = Some(e.clone());
                        }
                    }
                    replies.push(reply);
                }
                None => {
                    dead_err.get_or_insert(Error::InvalidConfig {
                        reason: "shard worker terminated early".into(),
                    });
                }
            }
        }
        // Merge whatever arrived before reporting a dead shard, so healthy
        // routes' emissions for this batch are still delivered.
        let steps = replies.iter().map(|r| r.steps.len()).max().unwrap_or(0);
        for step in 0..steps {
            let mut cpu = Duration::ZERO;
            let mut merged = std::mem::take(&mut self.merge_scratch);
            for reply in &mut replies {
                if let Some(out) = reply.steps.get_mut(step) {
                    cpu += out.cpu;
                    merged.append(&mut out.batches);
                }
            }
            merged.sort_unstable_by_key(|&(route, _)| route);
            for (_, batch) in &merged {
                sink.accept_batch(batch);
            }
            if self.track_step_costs {
                if let Some(&ts) = stamps.get(step) {
                    self.step_costs.push((ts, cpu));
                }
            }
            merged.clear();
            self.merge_scratch = merged;
        }
        self.merged_since_ckpt += 1;
        match first_err {
            Some((_, _, e)) => Err(e),
            None => match dead_err {
                Some(e) => Err(e),
                None => Ok(()),
            },
        }
    }

    /// Closes the input channels and joins the workers.
    fn shutdown(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None; // dropping the sender ends the worker loop
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The sharded engine is a [`StreamOperator`] like the engine it hosts —
/// pipelines swap one for the other without caller changes (the seam the
/// sink redesign was built for).
impl StreamOperator for ShardedEngine {
    fn process(&mut self, tuple: Tuple, sink: &mut impl EmissionSink) -> Result<(), Error> {
        self.push_into(tuple, sink)
    }

    fn finish(&mut self, sink: &mut impl EmissionSink) -> Result<(), Error> {
        self.finish_into(sink)
    }
}

/// The shard thread: feed every tuple of every batch through this shard's
/// engines (in ascending route order), replying with per-step, per-route
/// emission batches. After an error the shard stops filtering and replies
/// with the same error until finish.
fn shard_worker(
    mut engines: Vec<(u32, GroupEngine)>,
    rx: Receiver<ToShard>,
    tx: SyncSender<FromShard>,
) {
    let mut poisoned: Option<(usize, u32, Error)> = None;
    let mut collector = crate::sink::VecSink::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Batch(tuples) => {
                let mut reply = BatchReply {
                    steps: Vec::with_capacity(tuples.len()),
                    error: poisoned.clone(),
                };
                if poisoned.is_none() {
                    'batch: for (offset, tuple) in tuples.into_iter().enumerate() {
                        let start = Instant::now();
                        let mut out = StepOut::default();
                        for (route, engine) in &mut engines {
                            match engine.push_into(tuple.clone(), &mut collector) {
                                Ok(()) => {
                                    let emissions = collector.drain_vec();
                                    if !emissions.is_empty() {
                                        out.batches.push((*route, emissions));
                                    }
                                }
                                Err(e) => {
                                    poisoned = Some((offset, *route, e));
                                    out.cpu = start.elapsed();
                                    reply.steps.push(out);
                                    reply.error = poisoned.clone();
                                    break 'batch;
                                }
                            }
                        }
                        out.cpu = start.elapsed();
                        reply.steps.push(out);
                    }
                }
                if tx.send(FromShard::Batch(reply)).is_err() {
                    return; // caller went away
                }
            }
            ToShard::Columnar(batch) => {
                let rows = batch.rows();
                let mut reply = BatchReply {
                    steps: Vec::with_capacity(rows),
                    error: poisoned.clone(),
                };
                if poisoned.is_none() {
                    // Each route consumes the whole batch column-at-a-time
                    // and hands back per-row step outputs; those are then
                    // reassembled into the per-step, per-route layout the
                    // caller's merge expects.
                    let mut per_route: Vec<(u32, Vec<Vec<crate::engine::Emission>>)> =
                        Vec::with_capacity(engines.len());
                    let mut err: Option<(usize, u32, Error)> = None;
                    let start = Instant::now();
                    for (route, engine) in &mut engines {
                        let mut steps: Vec<Vec<crate::engine::Emission>> = Vec::with_capacity(rows);
                        if let Err(e) = engine.push_batch_columnar_steps(&batch, &mut steps) {
                            // The failing row is the first one the route
                            // produced no step entry for.
                            let row = steps.len();
                            if err.as_ref().is_none_or(|f| (row, *route) < (f.0, f.1)) {
                                err = Some((row, *route, e));
                            }
                        }
                        per_route.push((*route, steps));
                    }
                    // Whole-batch wall clock, attributed evenly across the
                    // rows (per-step costs are monitoring data; the merge
                    // order never depends on them).
                    let per_step_cpu = start.elapsed() / rows.max(1) as u32;
                    // Reassemble, truncating at the earliest failure the
                    // way the per-tuple loop stops: steps past the failing
                    // row are dropped, and at the failing row only routes
                    // *before* the failing one contribute (the ones the
                    // per-tuple loop would have run before breaking).
                    let cut = err.as_ref().map(|e| (e.0, e.1));
                    let steps_n = cut.map_or(rows, |(row, _)| row + 1);
                    for step in 0..steps_n {
                        let mut out = StepOut {
                            cpu: per_step_cpu,
                            batches: Vec::new(),
                        };
                        for (route, steps) in &mut per_route {
                            if cut.is_some_and(|(erow, eroute)| step == erow && *route >= eroute) {
                                continue;
                            }
                            if let Some(emissions) = steps.get_mut(step) {
                                if !emissions.is_empty() {
                                    out.batches.push((*route, std::mem::take(emissions)));
                                }
                            }
                        }
                        reply.steps.push(out);
                    }
                    poisoned = err;
                    reply.error = poisoned.clone();
                }
                if tx.send(FromShard::Batch(reply)).is_err() {
                    return; // caller went away
                }
            }
            ToShard::Control(route, op) => {
                // Queue the op on the route's engine; it applies at the
                // engine's next safe point (the first tuple of the next
                // batch), matching the inline path's boundary exactly.
                // Ops are validated on the caller thread, so a failure
                // here poisons the shard like any engine error.
                if poisoned.is_none() {
                    if let Some((_, engine)) = engines.iter_mut().find(|(r, _)| *r == route) {
                        let result = match op {
                            ControlOp::Add(id, spec) => engine.queue_add_at(id, spec),
                            ControlOp::Remove(id) => engine.remove_filter(id),
                            ControlOp::Update(id, spec) => engine.update_filter(id, spec),
                        };
                        if let Err(e) = result {
                            poisoned = Some((0, route, e));
                        }
                    }
                }
            }
            ToShard::Checkpoint => {
                // The caller merged everything in flight before sending
                // this, so every engine sits exactly at the barrier: cross
                // each safe-point boundary and ship the drains + snapshots.
                let mut reply = CheckpointReply {
                    tail: Vec::with_capacity(engines.len()),
                    snaps: Vec::with_capacity(engines.len()),
                    error: poisoned.as_ref().map(|(_, r, e)| (*r, e.clone())),
                };
                if poisoned.is_none() {
                    for (route, engine) in &mut engines {
                        match engine.snapshot_into(&mut collector) {
                            Ok(snap) => {
                                reply.tail.push((*route, collector.drain_vec()));
                                reply.snaps.push((*route, snap));
                            }
                            Err(e) => {
                                poisoned = Some((0, *route, e.clone()));
                                reply.error = Some((*route, e));
                                break;
                            }
                        }
                    }
                }
                if tx.send(FromShard::Checkpointed(reply)).is_err() {
                    return; // caller went away
                }
            }
            ToShard::Die => {
                // Fault injection: exit without replying, exactly like a
                // panicked worker — the disconnected channels are what the
                // caller's failure detection keys on.
                return;
            }
            ToShard::Finish => {
                let mut reply = FinishReply {
                    tail: Vec::with_capacity(engines.len()),
                    metrics: Vec::with_capacity(engines.len()),
                    error: poisoned.as_ref().map(|(_, r, e)| (*r, e.clone())),
                };
                for (route, engine) in &mut engines {
                    if poisoned.is_none() {
                        match engine.finish_into(&mut collector) {
                            Ok(()) => reply.tail.push((*route, collector.drain_vec())),
                            Err(e) => {
                                if reply.error.is_none() {
                                    reply.error = Some((*route, e));
                                }
                            }
                        }
                    }
                    // Lifetime metrics, so filters removed by control ops
                    // keep their per-epoch stats in the aggregate.
                    reply.metrics.push((*route, engine.lifetime_metrics()));
                }
                let _ = tx.send(FromShard::Finished(reply));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, GroupEngine};
    use crate::quality::FilterSpec;
    use crate::schema::Schema;
    use crate::sink::VecSink;
    use crate::tuple::TupleBuilder;

    fn schema() -> Schema {
        Schema::new(["t"])
    }

    fn group(schema: &Schema, scale: f64) -> GroupEngineBuilder {
        GroupEngine::builder(schema.clone())
            .filter(FilterSpec::delta("t", 2.0 * scale, 0.9 * scale))
            .filter(FilterSpec::delta("t", 3.0 * scale, 1.4 * scale))
    }

    fn stream(schema: &Schema, n: usize) -> Vec<Tuple> {
        let mut b = TupleBuilder::new(schema);
        (0..n)
            .map(|i| {
                let v = (i as f64 * 0.7).sin() * 8.0 + (i as f64 * 0.05);
                b.at_millis(10 * (i as u64 + 1))
                    .set("t", v)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn single_route_matches_group_engine() {
        let s = schema();
        let mut reference = group(&s, 1.0).build().unwrap();
        let mut expected = VecSink::new();
        reference.run_into(stream(&s, 500), &mut expected).unwrap();

        for n in [1usize, 2, 4] {
            let mut sharded = ShardedEngine::builder()
                .parallelism(n)
                .batch_size(17) // deliberately odd to cross batch edges
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            sharded.run_into(stream(&s, 500), &mut out).unwrap();
            assert_eq!(out.as_slice(), expected.as_slice(), "n={n}");
            assert_eq!(
                sharded.metrics().output_tuples,
                reference.metrics().output_tuples
            );
        }
    }

    #[test]
    fn merge_order_is_invariant_to_parallelism() {
        let s = schema();
        let run = |parallelism: usize, batch: usize| {
            let mut e = ShardedEngine::builder()
                .parallelism(parallelism)
                .batch_size(batch)
                .route("a", group(&s, 1.0))
                .route("b", group(&s, 0.5))
                .route("c", group(&s, 2.0))
                .route("d", group(&s, 1.5).algorithm(Algorithm::SelfInterested))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            e.run_into(stream(&s, 400), &mut out).unwrap();
            (out.into_vec(), e.metrics())
        };
        let (base_out, base_metrics) = run(1, 128);
        for (n, batch) in [(2usize, 128usize), (4, 31), (8, 1), (3, 400)] {
            let (out, metrics) = run(n, batch);
            assert_eq!(out, base_out, "n={n} batch={batch}");
            assert_eq!(metrics.output_tuples, base_metrics.output_tuples);
            assert_eq!(metrics.emissions, base_metrics.emissions);
            assert_eq!(metrics.input_tuples, base_metrics.input_tuples);
        }
    }

    #[test]
    fn route_metrics_cover_every_route() {
        let s = schema();
        let mut e = ShardedEngine::builder()
            .parallelism(3)
            .route("a", group(&s, 1.0))
            .route("b", group(&s, 0.7))
            .build()
            .unwrap();
        assert_eq!(e.routes(), 2);
        assert!(e.shards() <= 2);
        e.run_into(stream(&s, 200), &mut crate::sink::NullSink)
            .unwrap();
        assert_eq!(e.route_metrics().len(), 2);
        for m in e.route_metrics() {
            assert_eq!(m.input_tuples, 200);
            assert!(m.output_tuples > 0);
        }
        assert_eq!(e.metrics().input_tuples, 400);
    }

    #[test]
    fn eager_validation_matches_group_engine() {
        let s = schema();
        let mut e = ShardedEngine::builder()
            .route("a", group(&s, 1.0))
            .build()
            .unwrap();
        let mut sink = VecSink::new();
        let tuples = stream(&s, 3);
        e.push_into(tuples[1].clone(), &mut sink).unwrap();
        // decreasing timestamp → out of order, detected before any batch
        // ships (an equal timestamp would be legal)
        assert!(matches!(
            e.push_into(tuples[0].with_seq(2), &mut sink),
            Err(Error::OutOfOrder { .. })
        ));
        // seq gap → non-contiguous
        let mut b = TupleBuilder::new(&s);
        let _ = b.at_millis(1).set("t", 0.0).build().unwrap();
        let _ = b.at_millis(2).set("t", 0.0).build().unwrap();
        let _ = b.at_millis(3).set("t", 0.0).build().unwrap();
        let skipped = b.at_millis(500).set("t", 0.0).build().unwrap();
        assert!(matches!(
            e.push_into(skipped, &mut sink),
            Err(Error::NonContiguousSeq { .. })
        ));
        e.finish_into(&mut sink).unwrap();
        assert!(matches!(e.finish_into(&mut sink), Err(Error::Finished)));
        assert!(matches!(
            e.push_into(tuples[2].clone(), &mut sink),
            Err(Error::Finished)
        ));
    }

    #[test]
    fn shard_side_errors_surface() {
        let s = Schema::new(["t", "u"]);
        let mut e = ShardedEngine::builder()
            .batch_size(4)
            .route(
                "needs-u",
                GroupEngine::builder(s.clone()).filter(FilterSpec::delta("u", 2.0, 0.9)),
            )
            .build()
            .unwrap();
        let mut b = TupleBuilder::new(&s);
        let mut sink = VecSink::new();
        let mut saw_error = false;
        for i in 0..20u64 {
            // `u` is never set, so every shard-side push fails.
            let t = b.at_millis(10 * (i + 1)).set("t", 0.0).build().unwrap();
            match e.push_into(t, &mut sink) {
                Ok(()) => {}
                Err(Error::MissingValue { .. }) => {
                    saw_error = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        if saw_error {
            // the engine is poisoned: further input is refused with the
            // same error, and finish still drains/joins cleanly
            let t = b.at_millis(10_000).set("t", 0.0).build().unwrap();
            assert!(matches!(
                e.push_into(t, &mut sink),
                Err(Error::MissingValue { .. })
            ));
            assert!(matches!(
                e.finish_into(&mut sink),
                Err(Error::MissingValue { .. })
            ));
        } else {
            assert!(matches!(
                e.finish_into(&mut sink),
                Err(Error::MissingValue { .. })
            ));
        }
    }

    #[test]
    fn builder_rejects_empty_and_duplicate_routes() {
        assert!(matches!(
            ShardedEngine::builder().build(),
            Err(Error::InvalidConfig { .. })
        ));
        let s = schema();
        assert!(matches!(
            ShardedEngine::builder()
                .route("x", group(&s, 1.0))
                .route("x", group(&s, 2.0))
                .build(),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn step_costs_drain_when_tracked() {
        let s = schema();
        let mut e = ShardedEngine::builder()
            .track_step_costs(true)
            .batch_size(8)
            .route("a", group(&s, 1.0))
            .build()
            .unwrap();
        e.run_into(stream(&s, 64), &mut crate::sink::NullSink)
            .unwrap();
        let samples = e.take_step_costs();
        assert_eq!(samples.len(), 64);
        // arrival stamps are the tuples' own timestamps, in order
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(e.take_step_costs().is_empty(), "drained");
    }

    #[test]
    fn shard_index_is_stable_and_bounded() {
        for n in 1..9 {
            for key in ["a", "b", "G1 (DC1 fluoro)", ""] {
                let i = shard_index(key, n);
                assert!(i < n);
                assert_eq!(i, shard_index(key, n));
            }
        }
        assert_eq!(shard_index("anything", 1), 0);
    }

    mod fault_tolerance {
        use super::*;
        use crate::sink::NullSink;

        #[test]
        fn kill_without_checkpoint_replays_from_the_start() {
            let s = schema();
            let mut reference = group(&s, 1.0).build().unwrap();
            let mut expected = VecSink::new();
            reference.run_into(stream(&s, 400), &mut expected).unwrap();

            let mut e = ShardedEngine::builder()
                .batch_size(13)
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            for (i, t) in stream(&s, 400).into_iter().enumerate() {
                if i == 150 {
                    e.kill_shard(0).unwrap();
                }
                e.push_into(t, &mut out).unwrap();
            }
            e.finish_into(&mut out).unwrap();
            assert_eq!(out.as_slice(), expected.as_slice());
            assert_eq!(e.respawns(), 1);
        }

        #[test]
        fn checkpoint_then_kill_replays_only_the_suffix() {
            let s = schema();
            // The fault-free reference takes the same checkpoint (the
            // boundary drain is part of the contract).
            let run = |kill: bool| {
                let mut e = ShardedEngine::builder()
                    .parallelism(2)
                    .batch_size(17)
                    .route("a", group(&s, 1.0))
                    .route("b", group(&s, 0.5))
                    .build()
                    .unwrap();
                let mut out = VecSink::new();
                for (i, t) in stream(&s, 500).into_iter().enumerate() {
                    if i == 200 {
                        let snap = e.checkpoint(&mut out).unwrap();
                        assert_eq!(snap.routes(), 2);
                        assert_eq!(snap.input_tuples(), 200);
                    }
                    if kill && i == 350 {
                        for shard in 0..e.shards() {
                            e.kill_shard(shard).unwrap();
                        }
                    }
                    e.push_into(t, &mut out).unwrap();
                }
                e.finish_into(&mut out).unwrap();
                (out.into_vec(), e.respawns(), e.metrics())
            };
            let (expected, zero, m1) = run(false);
            let (killed, respawns, m2) = run(true);
            assert_eq!(zero, 0);
            assert!(respawns >= 1, "every spawned shard was killed");
            assert_eq!(killed, expected, "respawned output must be byte-identical");
            assert_eq!(m1.output_tuples, m2.output_tuples);
            assert_eq!(m1.input_tuples, m2.input_tuples);
        }

        #[test]
        fn restore_resumes_at_the_checkpoint_position() {
            let s = schema();
            let run_reference = || {
                let mut e = ShardedEngine::builder()
                    .batch_size(19)
                    .route("only", group(&s, 1.0))
                    .build()
                    .unwrap();
                let mut pre = VecSink::new();
                for t in stream(&s, 500).drain(..250) {
                    e.push_into(t, &mut pre).unwrap();
                }
                let snap = e.checkpoint(&mut pre).unwrap();
                let mut post = VecSink::new();
                for t in stream(&s, 500).drain(..).skip(250) {
                    e.push_into(t, &mut post).unwrap();
                }
                e.finish_into(&mut post).unwrap();
                (pre.into_vec(), snap, post.into_vec())
            };
            let (_, snap, expected_post) = run_reference();

            // "Crash": drop everything, rebuild from the snapshot, replay
            // the suffix from the caller's log.
            let mut restored = ShardedEngine::restore(&snap).unwrap();
            assert_eq!(restored.input_tuples(), 250);
            let mut replayed = VecSink::new();
            // the restored engine rejects anything but the exact suffix
            let tuples = stream(&s, 500);
            assert!(restored
                .push_into(tuples[100].clone(), &mut replayed)
                .is_err());
            for t in &tuples[250..] {
                restored.push_into(t.clone(), &mut replayed).unwrap();
            }
            restored.finish_into(&mut replayed).unwrap();
            assert_eq!(replayed.as_slice(), &expected_post[..]);
            assert_eq!(restored.metrics().input_tuples, 500, "lifetime continues");
        }

        #[test]
        fn respawn_budget_and_replay_bound_are_enforced() {
            let s = schema();
            // Budget 0: the first death is fatal.
            let mut e = ShardedEngine::builder()
                .max_respawns(0)
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            e.kill_shard(0).unwrap();
            let mut out = VecSink::new();
            let mut failed = false;
            for t in stream(&s, 300) {
                if let Err(err) = e.push_into(t, &mut out) {
                    assert!(err.to_string().contains("respawn budget"), "{err}");
                    failed = true;
                    break;
                }
            }
            assert!(failed || e.finish_into(&mut out).is_err());

            // Replay bound: once the log overflows, respawn is refused.
            let mut e = ShardedEngine::builder()
                .replay_capacity(64)
                .batch_size(16)
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            let tuples = stream(&s, 300);
            for t in &tuples[..200] {
                e.push_into(t.clone(), &mut out).unwrap();
            }
            e.kill_shard(0).unwrap();
            let mut overflowed = false;
            for t in &tuples[200..] {
                if let Err(err) = e.push_into(t.clone(), &mut out) {
                    assert!(err.to_string().contains("replay log overflowed"), "{err}");
                    overflowed = true;
                    break;
                }
            }
            assert!(overflowed || e.finish_into(&mut out).is_err());

            // …and a checkpoint resets the bound, making respawn live again.
            let mut e = ShardedEngine::builder()
                .replay_capacity(64)
                .batch_size(16)
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            for t in &tuples[..200] {
                e.push_into(t.clone(), &mut out).unwrap();
            }
            e.checkpoint(&mut out).unwrap();
            e.kill_shard(0).unwrap();
            for t in &tuples[200..] {
                e.push_into(t.clone(), &mut out).unwrap();
            }
            e.finish_into(&mut out).unwrap();
            assert_eq!(e.respawns(), 1);
        }

        #[test]
        fn control_ops_count_toward_the_replay_bound() {
            // A churn-heavy stream must not grow the replay log without
            // bound: ops cost one tuple-equivalent each, so an op-only
            // workload overflows the bound and a later death is refused.
            let s = schema();
            let mut e = ShardedEngine::builder()
                .replay_capacity(8)
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut refused = false;
            for i in 0..40 {
                if i == 20 {
                    e.kill_shard(0).unwrap();
                }
                let op =
                    e.update_filter(0, FilterId::from_index(0), FilterSpec::delta("t", 2.0, 0.9));
                if let Err(err) = op {
                    assert!(err.to_string().contains("replay log overflowed"), "{err}");
                    refused = true;
                    break;
                }
            }
            assert!(refused, "the overflowed log must refuse the respawn");
        }

        #[test]
        fn restore_keeps_the_fault_tolerance_envelope() {
            let s = schema();
            let mut e = ShardedEngine::builder()
                .replay_capacity(10_000)
                .max_respawns(9)
                .batch_size(16) // deaths are detected at dispatch, so keep it tight
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            for t in stream(&s, 100) {
                e.push_into(t, &mut out).unwrap();
            }
            let snap = e.checkpoint(&mut out).unwrap();
            let mut restored = ShardedEngine::restore(&snap).unwrap();
            // the restored process honours the configured knobs: a death
            // well past the default 4-respawn budget is still recovered
            let tuples = stream(&s, 400);
            for (i, t) in tuples.iter().enumerate().skip(100) {
                if i % 50 == 0 {
                    restored.kill_shard(0).unwrap();
                }
                restored.push_into(t.clone(), &mut out).unwrap();
            }
            restored.finish_into(&mut out).unwrap();
            assert!(restored.respawns() > 4, "got {}", restored.respawns());
        }

        #[test]
        fn kill_shard_validates_input() {
            let s = schema();
            let mut e = ShardedEngine::builder()
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            assert!(matches!(e.kill_shard(7), Err(Error::InvalidConfig { .. })));
            e.finish_into(&mut NullSink).unwrap();
            assert!(matches!(e.kill_shard(0), Err(Error::Finished)));
        }

        #[test]
        fn checkpoint_applies_queued_control_ops_at_the_barrier() {
            let s = schema();
            let mut e = ShardedEngine::builder()
                .batch_size(11)
                .route("only", group(&s, 1.0))
                .build()
                .unwrap();
            let mut out = VecSink::new();
            let tuples = stream(&s, 200);
            for t in &tuples[..90] {
                e.push_into(t.clone(), &mut out).unwrap();
            }
            let added = e.add_filter(0, FilterSpec::delta("t", 1.0, 0.4)).unwrap();
            let snap = e.checkpoint(&mut out).unwrap();
            let roster = snap.route_snapshots()[0].roster();
            assert!(roster.iter().any(|(id, _)| *id == added));
            assert_eq!(snap.route_snapshots()[0].epoch(), 1);
            for t in &tuples[90..] {
                e.push_into(t.clone(), &mut out).unwrap();
            }
            e.finish_into(&mut out).unwrap();
        }
    }

    #[test]
    fn build_sharded_from_group_builder() {
        let s = schema();
        let mut reference = group(&s, 1.0).build().unwrap();
        let mut expected = VecSink::new();
        reference.run_into(stream(&s, 300), &mut expected).unwrap();

        let mut sharded = group(&s, 1.0).parallelism(2).build_sharded().unwrap();
        let mut out = VecSink::new();
        sharded.run_into(stream(&s, 300), &mut out).unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
    }
}
