//! Time units used throughout the crate.
//!
//! Streams are timestamped at the originating source (§2.2.1). All latency
//! accounting, time covers and timely-cut deadlines are expressed in
//! microseconds via the [`Micros`] newtype, which rules out unit confusion
//! between e.g. milliseconds-based experiment parameters and the internal
//! clock (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in microseconds.
///
/// `Micros` is used both as an absolute timestamp (microseconds since the
/// stream epoch) and as a duration; the arithmetic operators keep either
/// interpretation consistent.
///
/// ```rust
/// use gasf_core::time::Micros;
/// let t = Micros::from_millis(10);
/// assert_eq!(t + Micros::from_millis(5), Micros::from_millis(15));
/// assert_eq!((t - Micros::from_millis(4)).as_millis_f64(), 6.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero time — the stream epoch.
    pub const ZERO: Micros = Micros(0);
    /// The maximum representable time.
    pub const MAX: Micros = Micros(u64::MAX);

    /// Creates a timestamp from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Creates a timestamp from fractional seconds, rounding to microseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        Micros((s * 1e6).round().max(0.0) as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in milliseconds as a float (useful for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction; useful for computing non-negative delays.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Micros) -> Option<Micros> {
        self.0.checked_add(rhs.0).map(Micros)
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    /// # Panics
    /// Panics in debug builds if `rhs > self`; use
    /// [`Micros::saturating_sub`] when underflow is possible.
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<u64> for Micros {
    fn from(us: u64) -> Self {
        Micros(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Micros::from_millis(3).as_micros(), 3_000);
        assert_eq!(Micros::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Micros::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(Micros::from_secs_f64(-1.0), Micros::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Micros(100);
        let b = Micros(40);
        assert_eq!(a + b, Micros(140));
        assert_eq!(a - b, Micros(60));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros(140));
        assert_eq!(Micros::MAX.checked_add(Micros(1)), None);
    }

    #[test]
    fn ordering() {
        assert!(Micros(1) < Micros(2));
        assert_eq!(Micros::default(), Micros::ZERO);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(Micros(500).to_string(), "500us");
        assert_eq!(Micros::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Micros::from_secs(3).to_string(), "3.000s");
    }
}
