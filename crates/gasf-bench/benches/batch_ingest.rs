//! Columnar-batch ingestion vs. the single-tuple hot path.
//!
//! `batch_ingest/<feed>/<n>shards` replays the shared 2 000-tuple NAMOS
//! trace through one group of 256 overlapping delta filters (the
//! `wide_roster` roster, compiled tier) — `single` pushes one `Tuple` at
//! a time, `batch64`/`batch1024` feed pre-chunked [`TupleBatch`]es
//! through `push_batch_columnar`. One iteration is a full trace replay
//! into a [`NullSink`], so the columnar win (amortised per-batch
//! validation/derivation, lazy payload interning, one `Arc` per shard
//! broadcast instead of per-tuple staging) appears as a lower mean.
//! Batches are chunked once outside the timed loop: the generators emit
//! batches natively, so ingestion — not conversion — is what is priced.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_core::batch::TupleBatch;
use gasf_core::engine::{Algorithm, GroupEngine, GroupEngineBuilder};
use gasf_core::quality::FilterSpec;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::NullSink;
use gasf_sources::Trace;
use std::hint::black_box;
use std::sync::Arc;

const ROSTER_WIDTH: usize = 256;
const BATCH_SIZES: [usize; 2] = [64, 1024];

/// The `wide_roster` 256-filter roster: overlapping deltas on one
/// attribute, granularities spread from tight to loose with fixed slack.
fn roster(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    (0..ROSTER_WIDTH)
        .map(|i| FilterSpec::delta("tmpr4", s * (3.0 + 0.25 * i as f64), s * 0.6))
        .collect()
}

fn engine_builder(trace: &Trace, specs: &[FilterSpec]) -> GroupEngineBuilder {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(Algorithm::RegionGreedy)
        .filters(specs.iter().cloned())
}

fn run_single(trace: &Trace, specs: &[FilterSpec]) -> u64 {
    let mut engine = engine_builder(trace, specs).build().expect("roster builds");
    engine
        .run_into(trace.tuples().iter().cloned(), &mut NullSink)
        .expect("bench stream is well-formed");
    engine.metrics().emissions
}

fn run_batched(trace: &Trace, specs: &[FilterSpec], batches: &[Arc<TupleBatch>]) -> u64 {
    let mut engine = engine_builder(trace, specs).build().expect("roster builds");
    for batch in batches {
        engine
            .push_batch_columnar(batch, &mut NullSink)
            .expect("bench stream is well-formed");
    }
    engine.finish_into(&mut NullSink).expect("finish succeeds");
    engine.metrics().emissions
}

fn sharded(trace: &Trace, specs: &[FilterSpec], shards: usize) -> ShardedEngine {
    ShardedEngine::builder()
        .parallelism(shards)
        .route("group", engine_builder(trace, specs))
        .build()
        .expect("sharded roster builds")
}

fn run_single_sharded(trace: &Trace, specs: &[FilterSpec], shards: usize) -> u64 {
    let mut engine = sharded(trace, specs, shards);
    engine
        .run_into(trace.tuples().iter().cloned(), &mut NullSink)
        .expect("bench stream is well-formed");
    engine.metrics().emissions
}

fn run_batched_sharded(
    trace: &Trace,
    specs: &[FilterSpec],
    batches: &[Arc<TupleBatch>],
    shards: usize,
) -> u64 {
    let mut engine = sharded(trace, specs, shards);
    for batch in batches {
        engine
            .push_batch_columnar(batch, &mut NullSink)
            .expect("bench stream is well-formed");
    }
    engine.finish_into(&mut NullSink).expect("finish succeeds");
    engine.metrics().emissions
}

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let specs = roster(&trace);
    let chunked: Vec<(usize, Vec<Arc<TupleBatch>>)> = BATCH_SIZES
        .iter()
        .map(|&size| {
            (
                size,
                trace.batches(size).into_iter().map(Arc::new).collect(),
            )
        })
        .collect();

    let mut g = c.benchmark_group("batch_ingest");
    for shards in [1usize, 4] {
        let suffix = format!("{shards}shards");
        g.bench_with_input(
            BenchmarkId::new("single", &suffix),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    black_box(if shards == 1 {
                        run_single(&trace, &specs)
                    } else {
                        run_single_sharded(&trace, &specs, shards)
                    })
                })
            },
        );
        for (size, batches) in &chunked {
            g.bench_with_input(
                BenchmarkId::new(format!("batch{size}"), &suffix),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        black_box(if shards == 1 {
                            run_batched(&trace, &specs, batches)
                        } else {
                            run_batched_sharded(&trace, &specs, batches, shards)
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
