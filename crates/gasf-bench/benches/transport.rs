//! Transport seam cost: the same middleware workload drained through the
//! in-memory analytic overlay vs. the `gasf-wire` localhost-TCP
//! transport, at 1 and 4 engine shards.
//!
//! One iteration replays the full layout workload through a fresh
//! middleware partition — `pipeline()` for the overlay, `pipeline_over`
//! with a freshly connected `TcpTransport` for the wire (connection
//! setup is inside the iteration; with thousands of emissions per replay
//! it amortises to noise). The TCP numbers therefore price the real
//! costs the simulator abstracts away: framing, syscalls, and the
//! loopback stack, with a drain thread on the other end reading frames
//! as fast as they arrive.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_wire::frame::read_frame;
use gasf_wire::layout::HostLayout;
use gasf_wire::tcp::{TcpTransport, WireConfig};
use gasf_wire::worker::build_middleware;
use gasf_wire::DEFAULT_MAX_FRAME;
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::Arc;

const SHARDS: [usize; 2] = [1, 4];

fn layout(parallelism: usize) -> HostLayout {
    let toml = format!(
        r#"
[deployment]
name = "bench"
[workload]
tuples = 2000
seed = 1
algorithm = "region-greedy"
strategy = "earliest"
parallelism = {parallelism}
[[process]]
id = 0
role = "source"
addr = "127.0.0.1:0"
nodes = [0]
[[process]]
id = 1
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [1, 2, 3]
"#
    );
    HostLayout::from_toml(&toml).expect("bench layout parses")
}

/// Replay through the analytic overlay (the default data plane).
fn run_overlay(layout: &HostLayout) -> u64 {
    let (mut mw, src, trace) = build_middleware(layout).expect("middleware builds");
    let mut pipeline = mw.pipeline(src).expect("pipeline");
    for t in trace.tuples() {
        pipeline.push(t.clone()).expect("push");
    }
    pipeline.finish().expect("finish");
    mw.overlay().total_bytes()
}

/// Replay over a real localhost TCP connection into a drain thread.
fn run_tcp(layout: &HostLayout, addr: std::net::SocketAddr) -> u64 {
    let (mut mw, src, trace) = build_middleware(layout).expect("middleware builds");
    let mut wire =
        TcpTransport::connect(layout, 0, WireConfig::default(), |_| Ok(addr)).expect("connect");
    {
        let mut pipeline = mw.pipeline_over(src, &mut wire).expect("pipeline");
        for t in trace.tuples() {
            pipeline.push(t.clone()).expect("push");
        }
        pipeline.finish().expect("finish");
    }
    gasf_net::Transport::flush(&mut wire).expect("flush");
    gasf_net::Transport::total_bytes(&wire)
}

/// A drain server that accepts connections forever and reads frames to
/// EOF — the subscriber side of the wire, minus digesting.
fn spawn_drain() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind drain");
    let addr = listener.local_addr().expect("drain addr");
    let listener = Arc::new(listener);
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            std::thread::spawn(move || {
                while let Ok(Some(frame)) = read_frame(&mut stream, DEFAULT_MAX_FRAME) {
                    black_box(frame);
                }
            });
        }
    });
    addr
}

fn bench(c: &mut Criterion) {
    let drain = spawn_drain();
    let mut g = c.benchmark_group("transport");
    for shards in SHARDS {
        let l = layout(shards);
        g.bench_with_input(BenchmarkId::new("in-memory", shards), &l, |b, l| {
            b.iter(|| black_box(run_overlay(l)))
        });
        g.bench_with_input(BenchmarkId::new("tcp-localhost", shards), &l, |b, l| {
            b.iter(|| black_box(run_tcp(l, drain)))
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
