//! Fig. 4.14: CPU cost of the output strategies under the PS algorithm.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::run_engine;
use gasf_bench::specs::dc_fluoro;
use gasf_core::engine::{Algorithm, OutputStrategy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let group = dc_fluoro(&trace);
    let mut g = c.benchmark_group("output_strategies");
    let strategies = [
        ("earliest", OutputStrategy::Earliest),
        ("batched_100", OutputStrategy::Batched(100)),
        ("per_candidate_set", OutputStrategy::PerCandidateSet),
    ];
    for (name, strategy) in strategies {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            b.iter(|| {
                black_box(run_engine(
                    &trace,
                    &group.specs,
                    Algorithm::PerCandidateSet,
                    s,
                    None,
                ))
            })
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
