//! Fault-tolerance cost: checkpoint barriers and crash-replay
//! throughput, at 1 and 4 worker shards.
//!
//! `recovery/checkpoint/<n>shards` replays the shared NAMOS trace
//! through a `ShardedEngine` while taking a safe-point checkpoint every
//! 500 tuples — one iteration is the full run (build + stream + 4
//! barriers + finish), so the mean against `scaling/...`'s
//! checkpoint-free shape is the end-to-end price of durability.
//! `recovery/replay/<n>shards` checkpoints once at mid-stream, kills
//! every worker shard at the three-quarter mark and lets the transparent
//! respawn replay the logged suffix — the mean tracks crash-recovery
//! throughput (restore + replay of ~500 tuples + the remaining stream).
//! Byte-identical output is asserted in `tests/`; here only the cost is
//! measured.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_core::prelude::*;
use std::hint::black_box;

fn engine(trace: &gasf_sources::Trace, s: f64, shards: usize) -> ShardedEngine {
    GroupEngine::builder(trace.schema().clone())
        .filter(FilterSpec::delta("tmpr4", s * 2.0, s))
        .filter(FilterSpec::delta("tmpr4", s * 3.0, s * 1.4))
        .filter(FilterSpec::delta("tmpr4", s * 2.5, s * 1.2))
        .parallelism(shards)
        .build_sharded()
        .unwrap()
}

/// Full run with a checkpoint barrier every `every` tuples.
fn checkpointed_run(trace: &gasf_sources::Trace, s: f64, shards: usize, every: usize) -> u64 {
    let mut e = engine(trace, s, shards);
    let mut out = VecSink::new();
    let mut checkpoints = 0u64;
    for chunk in trace.tuples().chunks(every) {
        e.push_batch(chunk.to_vec(), &mut out).unwrap();
        e.checkpoint(&mut out).unwrap();
        checkpoints += 1;
    }
    e.finish_into(&mut out).unwrap();
    checkpoints + out.len() as u64
}

/// Full run with one mid-stream checkpoint and a crash of every worker
/// shard at the three-quarter mark (recovered transparently).
fn failover_run(trace: &gasf_sources::Trace, s: f64, shards: usize) -> u64 {
    let tuples = trace.tuples();
    let (half, three_q) = (tuples.len() / 2, tuples.len() * 3 / 4);
    let mut e = engine(trace, s, shards);
    let mut out = VecSink::new();
    e.push_batch(tuples[..half].to_vec(), &mut out).unwrap();
    e.checkpoint(&mut out).unwrap();
    e.push_batch(tuples[half..three_q].to_vec(), &mut out)
        .unwrap();
    for shard in 0..e.shards() {
        e.kill_shard(shard).unwrap();
    }
    e.push_batch(tuples[three_q..].to_vec(), &mut out).unwrap();
    e.finish_into(&mut out).unwrap();
    assert!(e.respawns() >= 1, "the crash must actually be recovered");
    out.len() as u64
}

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let mut g = c.benchmark_group("recovery");

    for shards in [1usize, 4] {
        let id = BenchmarkId::new("checkpoint", format!("{shards}shards"));
        g.bench_with_input(id, &shards, |b, &shards| {
            b.iter(|| black_box(checkpointed_run(&trace, s, shards, 500)))
        });
    }
    for shards in [1usize, 4] {
        let id = BenchmarkId::new("replay", format!("{shards}shards"));
        g.bench_with_input(id, &shards, |b, &shards| {
            b.iter(|| black_box(failover_run(&trace, s, shards)))
        });
    }

    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
