//! Fig. 4.24: CPU cost of filtering with different data sources.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{run_variant, Variant};
use gasf_bench::specs::source_group;
use gasf_core::time::Micros;
use gasf_sources::SourceKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sources_cpu");
    let kinds = [
        ("cow", SourceKind::Cow),
        ("volcano", SourceKind::Volcano),
        ("fire", SourceKind::Fire),
    ];
    for (name, kind) in kinds {
        let trace = kind.generate(2_000, 1);
        let group = source_group(&trace, kind.primary_attr(), name, 42);
        for v in [Variant::Rg, Variant::Ps, Variant::Si] {
            g.bench_with_input(BenchmarkId::new(name, v.label()), &v, |b, &v| {
                b.iter(|| {
                    black_box(run_variant(
                        &trace,
                        &group.specs,
                        v,
                        Micros::from_millis(125),
                    ))
                })
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
