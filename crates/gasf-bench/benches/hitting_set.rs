//! Microbenchmark of the greedy hitting-set solver (the per-region cost
//! the run-time predictor of §3.3 models as linear in region size).

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_core::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterId};
use gasf_core::hitting_set::greedy_hitting_set;
use gasf_core::quality::Prescription;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleId;
use std::hint::black_box;

/// Builds a region-like instance: `filters` sets of `width` consecutive
/// tuples with 50% overlap between neighbours.
fn instance(filters: usize, width: u64) -> Vec<ClosedSet> {
    (0..filters as u64)
        .map(|f| {
            let start = f * width / 2;
            ClosedSet {
                filter: FilterId::from_index(f as usize),
                set_index: 0,
                candidates: (start..start + width)
                    .map(|s| CandidateTuple {
                        id: TupleId::from_seq(s),
                        timestamp: Micros::from_millis(s * 10),
                        key: s as f64,
                    })
                    .collect(),
                pick_degree: 1,
                prescription: Prescription::Any,
                si_choice: vec![TupleId::from_seq(start)],
                cause: CloseCause::Natural,
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hitting_set");
    for (filters, width) in [(3usize, 4u64), (10, 8), (20, 16), (50, 32)] {
        let sets = instance(filters, width);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{filters}x{width}")),
            &sets,
            |b, sets| b.iter(|| black_box(greedy_hitting_set(sets))),
        );
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
