//! Figs. 4.3-4.5: CPU cost per tuple of RG/RG+C/PS/PS+C/SI on the three
//! Table 4.1 groups.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{run_variant, Variant};
use gasf_bench::specs::table_4_1;
use gasf_core::time::Micros;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let groups = table_4_1(&trace);
    let mut g = c.benchmark_group("cpu_per_tuple");
    for group in &groups {
        for v in Variant::ALL {
            g.bench_with_input(BenchmarkId::new(&group.name, v.label()), &v, |b, &v| {
                b.iter(|| {
                    black_box(run_variant(
                        &trace,
                        &group.specs,
                        v,
                        Micros::from_millis(125),
                    ))
                })
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
