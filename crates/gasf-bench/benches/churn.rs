//! Subscription-churn throughput: lifecycle ops interleaved with
//! streaming, at 1 and 4 worker shards.
//!
//! `churn/lifecycle/<n>shards` replays the shared NAMOS trace through a
//! deployed middleware while churning the roster every 250 tuples —
//! subscribe a new app, retune another, unsubscribe the newcomer again —
//! plus one `BySelectivity` regroup at mid-stream. One iteration is the
//! full run (build + stream + churn + finish), so the mean tracks the
//! end-to-end cost of a *living* deployment; compare against
//! `scaling/...` for the churn-free baseline shape. `churn/engine_ops`
//! isolates the core control plane: a `GroupEngine` crossing an epoch
//! boundary (add + remove + update, drain, filter rebuild) every 50
//! tuples with no overlay attached.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_core::prelude::*;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{GroupingStrategy, Middleware, MiddlewareConfig};
use std::hint::black_box;

fn lifecycle_run(trace: &gasf_sources::Trace, s: f64, parallelism: usize) -> u64 {
    let mut mw = Middleware::with_config(
        Overlay::new(Topology::ring(9).build()),
        MiddlewareConfig {
            parallelism,
            ..Default::default()
        },
    );
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    for (i, node) in [2u32, 4, 6].into_iter().enumerate() {
        let _ = mw
            .subscribe(
                format!("app{i}"),
                NodeId(node),
                src,
                FilterSpec::delta(
                    "tmpr4",
                    s * (2.0 + i as f64 * 0.5),
                    s * (0.9 + i as f64 * 0.2),
                ),
            )
            .unwrap();
    }
    mw.deploy().unwrap();
    let tuples = trace.tuples();
    let half = tuples.len() / 2;
    let mut retune = 0u64;
    for (k, chunk) in tuples.chunks(250).enumerate() {
        mw.push_batch(src, chunk.to_vec()).unwrap();
        if (k + 1) * 250 == half {
            mw.regroup(src, GroupingStrategy::BySelectivity { isolate_above: 0.6 })
                .unwrap();
            continue;
        }
        let joiner = mw
            .subscribe(
                format!("churn{k}"),
                NodeId((k as u32 % 8) + 1),
                src,
                FilterSpec::delta("tmpr4", s * 1.8, s * 0.8),
            )
            .unwrap();
        let first = mw.subscriptions(src).unwrap()[0];
        retune += 1;
        mw.resubscribe(
            first,
            FilterSpec::delta("tmpr4", s * (2.0 + (retune % 3) as f64), s),
        )
        .unwrap();
        mw.unsubscribe(joiner).unwrap();
    }
    mw.finish(src).unwrap();
    mw.report(src).unwrap().engine.emissions
}

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let mut g = c.benchmark_group("churn");

    for shards in [1usize, 4] {
        let id = BenchmarkId::new("lifecycle", format!("{shards}shards"));
        g.bench_with_input(id, &shards, |b, &shards| {
            b.iter(|| black_box(lifecycle_run(&trace, s, shards)))
        });
    }

    g.bench_function("engine_ops", |b| {
        b.iter(|| {
            let mut engine = GroupEngine::builder(trace.schema().clone())
                .filter(FilterSpec::delta("tmpr4", s * 2.0, s))
                .filter(FilterSpec::delta("tmpr4", s * 3.0, s * 1.4))
                .build()
                .unwrap();
            let mut boundaries = 0u64;
            for chunk in trace.tuples().chunks(50) {
                let id = engine
                    .add_filter(FilterSpec::delta("tmpr4", s * 1.7, s * 0.7))
                    .unwrap();
                engine
                    .update_filter(
                        FilterId::from_index(0),
                        FilterSpec::delta("tmpr4", s * 2.2, s),
                    )
                    .unwrap();
                engine.push_batch(chunk.to_vec(), &mut NullSink).unwrap();
                engine.remove_filter(id).unwrap();
                boundaries += 1;
            }
            engine.finish_into(&mut NullSink).unwrap();
            black_box((boundaries, engine.epoch()))
        })
    });

    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
