//! Shard-scaling sweep: the ten-group stateless workload through a
//! [`ShardedEngine`](gasf_core::shard::ShardedEngine) at 1/2/4/8 shards
//! for each of RG/PS/SI.
//!
//! One iteration builds the sharded engine (routes hash-partitioned by
//! group name), replays the whole trace into a [`NullSink`] and finishes
//! the stream — so `mean_ns` is the wall-clock cost of the complete run
//! and shard scaling shows up directly as a lower mean. The ten routes
//! are independent filter groups, which is exactly the parallelism the
//! sharding exploits; expect near-linear scaling up to the machine's core
//! count and a plateau beyond it (a single-core container shows ~1×
//! across the whole sweep — the channels and merge add only a few percent
//! there).

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{build_sharded_engine, Variant};
use gasf_bench::specs::ten_groups_stateless;
use gasf_core::engine::OutputStrategy;
use gasf_core::sink::NullSink;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let groups = ten_groups_stateless(&trace);
    let mut g = c.benchmark_group("scaling");
    for v in [Variant::Rg, Variant::Ps, Variant::Si] {
        for shards in [1usize, 2, 4, 8] {
            let id = BenchmarkId::new(v.label(), format!("{shards}shards"));
            g.bench_with_input(id, &shards, |b, &shards| {
                b.iter(|| {
                    let mut engine = build_sharded_engine(
                        &trace,
                        &groups,
                        v.algorithm(),
                        OutputStrategy::Earliest,
                        shards,
                    );
                    engine
                        .run_into(trace.tuples().iter().cloned(), &mut NullSink)
                        .unwrap();
                    black_box(engine.metrics().emissions)
                })
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
