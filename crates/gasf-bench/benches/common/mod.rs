//! Shared bench fixtures.

use criterion::Criterion;
use gasf_sources::{NamosBuoy, Trace};
use std::time::Duration;

/// Bench-sized NAMOS trace (2 000 tuples keeps `cargo bench` quick while
/// still closing hundreds of regions).
#[allow(dead_code)] // not every bench target uses the shared trace
pub fn trace() -> Trace {
    NamosBuoy::new().tuples(2_000).seed(1).generate()
}

/// Criterion tuned for a multi-target suite: fewer samples, shorter
/// measurement windows.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
