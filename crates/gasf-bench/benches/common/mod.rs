//! Shared bench fixtures.

use criterion::Criterion;
use gasf_sources::{NamosBuoy, Trace};
use std::time::Duration;

/// Bench-sized NAMOS trace (2 000 tuples keeps `cargo bench` quick while
/// still closing hundreds of regions).
#[allow(dead_code)] // not every bench target uses the shared trace
pub fn trace() -> Trace {
    NamosBuoy::new().tuples(2_000).seed(1).generate()
}

/// Criterion tuned for a multi-target suite: fewer samples, shorter
/// measurement windows.
///
/// `GASF_BENCH_SMOKE=1` collapses the windows to a single iteration per
/// benchmark — CI uses it to prove every bench target still builds and
/// runs without paying for a measurement (numbers are meaningless there).
pub fn criterion() -> Criterion {
    if std::env::var_os("GASF_BENCH_SMOKE").is_some() {
        return Criterion::default()
            .sample_size(1)
            .warm_up_time(Duration::from_millis(0))
            .measurement_time(Duration::from_millis(0));
    }
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
