//! Fig. 4.10: the CPU overhead of enforcing timely cuts (RG vs RG+C at
//! each deadline).

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{run_variant, Variant};
use gasf_bench::specs::dc_fluoro;
use gasf_core::time::Micros;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let group = dc_fluoro(&trace);
    let mut g = c.benchmark_group("cuts_overhead");
    g.bench_function("RG(no cuts)", |b| {
        b.iter(|| black_box(run_variant(&trace, &group.specs, Variant::Rg, Micros::MAX)))
    });
    for deadline_ms in [125u64, 32, 8] {
        g.bench_with_input(
            BenchmarkId::new("RG+C", format!("{deadline_ms}ms")),
            &deadline_ms,
            |b, &ms| {
                b.iter(|| {
                    black_box(run_variant(
                        &trace,
                        &group.specs,
                        Variant::RgC,
                        Micros::from_millis(ms),
                    ))
                })
            },
        );
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
