//! Sink path vs legacy `push → Vec<Emission>` wrappers: the allocation
//! cost of materialising every push's emissions.
//!
//! Three drivers over the same trace and specs:
//!
//! * `vec`  — the compatibility wrappers (`push`/`finish` return a fresh
//!   `Vec<Emission>` per step, built through a `VecSink` clone),
//! * `sink` — the primary path into a [`NullSink`] (engine cost only:
//!   reused scratch, no per-push allocation, no collection),
//! * `collect` — the primary path into one [`VecSink`] for the whole run
//!   (what the experiment harness does).

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{build_engine, Variant};
use gasf_bench::specs::table_4_1;
use gasf_core::engine::OutputStrategy;
use gasf_core::sink::{NullSink, VecSink};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let group = &table_4_1(&trace)[0];
    let mut g = c.benchmark_group("sink_vs_vec");
    for v in [Variant::Rg, Variant::Ps, Variant::Si] {
        g.bench_with_input(BenchmarkId::new("vec", v.label()), &v, |b, &v| {
            b.iter(|| {
                let mut engine = build_engine(
                    &trace,
                    &group.specs,
                    v.algorithm(),
                    OutputStrategy::Earliest,
                    None,
                );
                let mut total = 0usize;
                for t in trace.tuples() {
                    total += engine.push(t.clone()).unwrap().len();
                }
                total += engine.finish().unwrap().len();
                black_box(total)
            })
        });
        g.bench_with_input(BenchmarkId::new("sink", v.label()), &v, |b, &v| {
            b.iter(|| {
                let mut engine = build_engine(
                    &trace,
                    &group.specs,
                    v.algorithm(),
                    OutputStrategy::Earliest,
                    None,
                );
                engine
                    .run_into(trace.tuples().iter().cloned(), &mut NullSink)
                    .unwrap();
                black_box(engine.metrics().emissions)
            })
        });
        g.bench_with_input(BenchmarkId::new("collect", v.label()), &v, |b, &v| {
            b.iter(|| {
                let mut engine = build_engine(
                    &trace,
                    &group.specs,
                    v.algorithm(),
                    OutputStrategy::Earliest,
                    None,
                );
                let mut sink = VecSink::new();
                engine
                    .run_into(trace.tuples().iter().cloned(), &mut sink)
                    .unwrap();
                black_box(sink.len())
            })
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
