//! Fig. 4.18: CPU cost vs group size, group-aware vs self-interested.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{run_variant, Variant};
use gasf_bench::specs::random_group;
use gasf_core::time::Micros;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let mut g = c.benchmark_group("group_size");
    for n in [3usize, 10, 20] {
        let specs = random_group(&trace, "tmpr4", n, (1.0, 6.0), s * 0.5, n as u64);
        for v in [Variant::Rg, Variant::Si] {
            g.bench_with_input(BenchmarkId::new(v.label(), n), &v, |b, &v| {
                b.iter(|| black_box(run_variant(&trace, &specs, v, Micros::from_millis(125))))
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
