//! Wide-roster sweep: per-tuple CPU of the fused `CompiledRoster`
//! evaluator vs. the interpreted trait-object path at 16/64/256 filters
//! per group.
//!
//! The rosters are overlapping delta filters on one attribute (the
//! paper's group premise), so the compiled tier collapses them into one
//! key class whose cohort cascade decides most members with a single
//! `|Δ|` plus a binary search; the interpreted path pays one virtual call
//! and one distance per filter regardless.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_core::engine::{Algorithm, GroupEngine};
use gasf_core::plan::EvaluatorTier;
use gasf_core::quality::FilterSpec;
use gasf_core::sink::NullSink;
use gasf_sources::Trace;
use std::hint::black_box;

const WIDTHS: [usize; 3] = [16, 64, 256];

/// `n` overlapping delta filters over one attribute: granularities spread
/// from tight to loose with a fixed small slack, so a handful of filters
/// track every swing while the long tail sits searching far below its
/// qualification threshold — the regime the cohort cascade prunes
/// wholesale and the virtual-call loop pays for one filter at a time.
fn roster(trace: &Trace, n: usize) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    (0..n)
        .map(|i| FilterSpec::delta("tmpr4", s * (3.0 + 0.25 * i as f64), s * 0.6))
        .collect()
}

fn run(trace: &Trace, specs: &[FilterSpec], tier: EvaluatorTier) -> u64 {
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .algorithm(Algorithm::RegionGreedy)
        .evaluator(tier)
        .filters(specs.iter().cloned())
        .build()
        .expect("bench roster builds");
    let mut sink = NullSink;
    engine
        .run_into(trace.tuples().iter().cloned(), &mut sink)
        .expect("bench stream is well-formed");
    engine.metrics().emissions
}

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let mut g = c.benchmark_group("wide_roster");
    for width in WIDTHS {
        let specs = roster(&trace, width);
        for (label, tier) in [
            ("compiled", EvaluatorTier::Compiled),
            ("interpreted", EvaluatorTier::Interpreted),
        ] {
            g.bench_with_input(BenchmarkId::new(label, width), &tier, |b, &tier| {
                b.iter(|| black_box(run(&trace, &specs, tier)))
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
