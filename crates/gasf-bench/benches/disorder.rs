//! Cost of the event-time front end.
//!
//! `disorder/ingest/<variant>` replays the shared 2 000-tuple NAMOS
//! trace through the `wide_roster` 256-filter compiled roster into a
//! [`NullSink`]:
//!
//! * `no_front_end` — the bare ordered hot path (the pre-event-time
//!   baseline every other variant is measured against),
//! * `bound0` — in-order arrivals through a zero-bound
//!   [`ReorderBuffer`]: the pay-for-what-you-use overhead of the trivial
//!   watermark (one comparison + an empty-map probe per tuple),
//! * `bound16ms` / `bound1024ms` — arrivals jittered within the bound
//!   (via [`Disorder`]) and reordered back; prices the buffer occupancy
//!   and the release scan at small and large disorder.
//!
//! `disorder/window/<kind>` prices the windowed aggregation filters
//! standalone: the full trace observed into a [`WindowFilter`] and
//! closed by a per-100-tuple watermark schedule.
//!
//! The shuffle itself runs outside the timed loop — arrival order is an
//! input, not work.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_core::engine::{Algorithm, GroupEngine, GroupEngineBuilder};
use gasf_core::event_time::{Aggregate, EventTimeConfig, ReorderBuffer, WindowFilter, WindowKind};
use gasf_core::quality::FilterSpec;
use gasf_core::sink::NullSink;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_sources::{Disorder, Trace};
use std::hint::black_box;

const ROSTER_WIDTH: usize = 256;

fn roster(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    (0..ROSTER_WIDTH)
        .map(|i| FilterSpec::delta("tmpr4", s * (3.0 + 0.25 * i as f64), s * 0.6))
        .collect()
}

fn engine_builder(trace: &Trace, specs: &[FilterSpec]) -> GroupEngineBuilder {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(Algorithm::RegionGreedy)
        .filters(specs.iter().cloned())
}

/// The baseline: ordered tuples straight into the engine.
fn run_bare(trace: &Trace, specs: &[FilterSpec]) -> u64 {
    let mut engine = engine_builder(trace, specs).build().expect("roster builds");
    engine
        .run_into(trace.tuples().iter().cloned(), &mut NullSink)
        .expect("bench stream is well-formed");
    engine.metrics().emissions
}

/// Arrivals through a reorder buffer, releases into the engine.
fn run_buffered(trace: &Trace, specs: &[FilterSpec], arrivals: &[Tuple], bound: Micros) -> u64 {
    let mut engine = engine_builder(trace, specs).build().expect("roster builds");
    let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(bound));
    let mut released = Vec::new();
    for t in arrivals {
        let late = buf.push_into(t.clone(), &mut released);
        debug_assert!(late.is_none(), "within-bound jitter is never late");
        for r in released.drain(..) {
            engine.push_into(r, &mut NullSink).expect("ordered release");
        }
    }
    buf.flush_into(&mut released);
    for r in released.drain(..) {
        engine.push_into(r, &mut NullSink).expect("ordered release");
    }
    engine.finish_into(&mut NullSink).expect("finish succeeds");
    engine.metrics().emissions
}

fn run_window(trace: &Trace, kind: WindowKind) -> usize {
    let attr = trace.schema().attr("tmpr4").expect("namos schema");
    let mut wf = WindowFilter::new(attr, kind, Aggregate::Mean);
    let mut out = Vec::new();
    for (i, t) in trace.tuples().iter().enumerate() {
        wf.observe(t);
        if i % 100 == 99 {
            wf.advance_into(t.timestamp(), &mut out);
        }
    }
    wf.finish_into(&mut out);
    out.len()
}

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let specs = roster(&trace);

    let mut g = c.benchmark_group("disorder");
    g.bench_function(BenchmarkId::new("ingest", "no_front_end"), |b| {
        b.iter(|| black_box(run_bare(&trace, &specs)))
    });
    for (label, bound) in [
        ("bound0", Micros::ZERO),
        ("bound16ms", Micros::from_millis(16)),
        ("bound1024ms", Micros::from_millis(1024)),
    ] {
        let arrivals = Disorder::bounded(bound).seed(9).apply(&trace);
        g.bench_function(BenchmarkId::new("ingest", label), |b| {
            b.iter(|| black_box(run_buffered(&trace, &specs, &arrivals, bound)))
        });
    }
    for (label, kind) in [
        (
            "tumbling1s",
            WindowKind::Tumbling {
                size: Micros::from_millis(1000),
            },
        ),
        (
            "sliding1s_100ms",
            WindowKind::Sliding {
                size: Micros::from_millis(1000),
                slide: Micros::from_millis(100),
            },
        ),
    ] {
        g.bench_function(BenchmarkId::new("window", label), |b| {
            b.iter(|| black_box(run_window(&trace, kind)))
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
