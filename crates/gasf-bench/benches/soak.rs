//! Soak-harness timing: one full smoke-sized soak per iteration.
//!
//! `soak/run/10k_subs` times the complete 10⁴-subscription soak —
//! build + subscribe + deploy + three pressure phases + churn + one
//! forwarder fault + connector-seam tail — so the mean tracks the
//! end-to-end cost of a living, overloaded deployment. The run's
//! invariants ([`SoakOutcome::assert_sane`]) are checked on every
//! iteration, so `GASF_BENCH_SMOKE=1 cargo bench --bench soak` doubles
//! as the CI sanity gate for the soak layer. The million-subscriber
//! numbers come from `cargo run -p gasf-bench --release --bin soak`
//! and live in `BENCH_baseline.json`.

mod common;

use criterion::{criterion_main, Criterion};
use gasf_bench::soak::{run_soak, SoakConfig, SoakOutcome};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = SoakConfig::smoke();
    let mut g = c.benchmark_group("soak");
    g.bench_function("run/10k_subs", |b| {
        b.iter(|| {
            let out: SoakOutcome = run_soak(black_box(&cfg));
            out.assert_sane();
            assert_eq!(out.faults, 1, "soak must inject exactly one fault");
            assert!(out.churn_ops > 0, "soak must churn the roster");
            black_box(out)
        })
    });
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
