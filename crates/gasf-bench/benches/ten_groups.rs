//! Table 5.3 / Fig. 5.3: CPU cost per batch for the ten heterogeneous
//! groups (DC1/DC2/DC3/SS mixes).

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use gasf_bench::runner::{run_variant, Variant};
use gasf_bench::specs::ten_groups;
use gasf_core::time::Micros;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = common::trace();
    let groups = ten_groups(&trace);
    let mut g = c.benchmark_group("ten_groups");
    for group in &groups {
        for v in [Variant::Ps, Variant::Si] {
            g.bench_with_input(BenchmarkId::new(&group.name, v.label()), &v, |b, &v| {
                b.iter(|| {
                    black_box(run_variant(
                        &trace,
                        &group.specs,
                        v,
                        Micros::from_millis(125),
                    ))
                })
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench(&mut c);
}
criterion_main!(benches);
