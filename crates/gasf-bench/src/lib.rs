//! # gasf-bench — experiment harness
//!
//! One runner per table/figure of the dissertation's evaluation (Ch. 4 and
//! Ch. 5), regenerating the paper's rows/series on the synthetic
//! substrates. See DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! paper-vs-measured records.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p gasf-bench --release --bin experiments -- all
//! ```
//!
//! or a single experiment (`fig4_2`, `tab5_3`, …). Criterion benches for
//! the CPU-cost figures live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod soak;
pub mod specs;

pub use report::Table;
pub use runner::{run_engine, RunOutcome, Variant};
pub use soak::{run_soak, SoakConfig, SoakOutcome};
