//! Filter-group specifications, derived exactly the way the paper does.
//!
//! §4.3: delta values are picked from `[srcStatistics, 3*srcStatistics]`
//! (or up to 20· for the Hybrid group), slack ≈ 50 % of delta. §5.4 sets
//! per-group deltas at `1·ASC`, `2·ASC` and a random value in between.
//! The concrete numbers in Tables 4.1/5.2 came from the authors' traces;
//! ours come from the synthetic traces via the same procedure, seeded for
//! reproducibility.

use gasf_core::quality::FilterSpec;
use gasf_core::time::Micros;
use gasf_sources::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibration factor applied to the paper's srcStatistics multipliers.
///
/// The paper's real traces come from quantised ADCs: most consecutive
/// deltas are zero, so their `srcStatistics` is far below the *typical
/// non-zero* step, and "delta in \[1,3\]·srcStatistics" still spans several
/// typical steps. Our synthetic traces are continuous (every delta is
/// non-zero), which would make the same multipliers produce single-tuple
/// candidate sets. Scaling the multipliers by 2 restores the paper's
/// effective delta-to-typical-step ratio; with it, the GA/SI output ratios
/// land in the paper's 0.6–0.8 band (see DESIGN.md, "Substitutions").
pub const DELTA_SCALE: f64 = 2.0;

/// A named group of filters (one row block of Table 4.1 / 5.2).
#[derive(Debug, Clone)]
pub struct Group {
    /// Group name (`DC_Fluoro`, …).
    pub name: String,
    /// The member filter specs.
    pub specs: Vec<FilterSpec>,
}

impl Group {
    fn new(name: &str, specs: Vec<FilterSpec>) -> Self {
        Group {
            name: name.into(),
            specs,
        }
    }
}

fn src_stat(trace: &Trace, attr: &str) -> f64 {
    trace
        .stats(attr)
        .expect("experiment attribute exists")
        .mean_abs_delta
}

/// A DC1 spec with slack = `slack_frac`·delta.
pub fn dc(attr: &str, delta: f64, slack_frac: f64) -> FilterSpec {
    FilterSpec::delta(attr, delta, delta * slack_frac)
}

/// Table 4.1's `DC_Fluoro` group: four DC filters on `fluoro` with deltas
/// in `[1, 3]·srcStatistics` and slack ≈ 50 % (one with smaller slack, as
/// in the paper's table).
pub fn dc_fluoro(trace: &Trace) -> Group {
    let s = src_stat(trace, "fluoro");
    let mut rng = StdRng::seed_from_u64(41);
    let d3: f64 = rng.gen_range(1.0..3.0) * DELTA_SCALE;
    Group::new(
        "DC_Fluoro",
        vec![
            dc("fluoro", s * 1.3 * DELTA_SCALE, 0.5),
            dc("fluoro", s * 3.0 * DELTA_SCALE, 0.43),
            dc("fluoro", s * d3, 0.5),
            dc("fluoro", s * 3.0 * DELTA_SCALE, 0.14),
        ],
    )
}

/// Table 4.1's `DC_Hybrid` group: mixed attributes, deltas in
/// `[1, 20]·srcStatistics`, slacks below 50 %.
pub fn dc_hybrid(trace: &Trace) -> Group {
    let mut rng = StdRng::seed_from_u64(42);
    let mut pick = |attr: &str| {
        let s = src_stat(trace, attr);
        // no DELTA_SCALE here: the Hybrid range already reaches 20x and
        // scaling it further produces region spans far beyond the paper's
        // latency regime.
        let mult: f64 = rng.gen_range(2.0..20.0);
        let slack_frac: f64 = rng.gen_range(0.2..0.5);
        dc(attr, s * mult, slack_frac)
    };
    Group::new(
        "DC_Hybrid",
        vec![pick("fluoro"), pick("tmpr2"), pick("tmpr4")],
    )
}

/// Table 4.1's `DC_Tmpr` group: three DC filters on `tmpr4`, deltas
/// 1·/2·/random·srcStatistics, slack 50 %.
pub fn dc_tmpr(trace: &Trace) -> Group {
    let s = src_stat(trace, "tmpr4");
    let mut rng = StdRng::seed_from_u64(43);
    let mid: f64 = rng.gen_range(1.0..2.0) * DELTA_SCALE;
    Group::new(
        "DC_Tmpr",
        vec![
            dc("tmpr4", s * DELTA_SCALE, 0.5),
            dc("tmpr4", s * 2.0 * DELTA_SCALE, 0.5),
            dc("tmpr4", s * mid, 0.5),
        ],
    )
}

/// The three NAMOS groups of Table 4.1, in order.
pub fn table_4_1(trace: &Trace) -> Vec<Group> {
    vec![dc_fluoro(trace), dc_hybrid(trace), dc_tmpr(trace)]
}

/// Fig. 4.19's groups for the other data sources (3 DC filters each,
/// deltas 1–3·srcStatistics, slack 50 %).
pub fn source_group(trace: &Trace, attr: &str, name: &str, seed: u64) -> Group {
    let s = src_stat(trace, attr);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mults = [0.0; 3];
    for m in &mut mults {
        *m = rng.gen_range(1.0..3.0) * DELTA_SCALE;
    }
    Group::new(name, mults.iter().map(|&m| dc(attr, s * m, 0.5)).collect())
}

/// A random group of `n` DC1 filters on one attribute, fixed slack value
/// and deltas in `[lo, hi]·srcStatistics` (Fig. 4.17's generator).
pub fn random_group(
    trace: &Trace,
    attr: &str,
    n: usize,
    mult_range: (f64, f64),
    slack_abs: f64,
    seed: u64,
) -> Vec<FilterSpec> {
    let s = src_stat(trace, attr);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let delta = s * rng.gen_range(mult_range.0..mult_range.1);
            // keep Axiom 1: slack <= delta/2
            FilterSpec::delta(attr, delta, slack_abs.min(delta / 2.0))
        })
        .collect()
}

/// Table 5.2's ten groups (types of Table 5.1) over the NAMOS trace.
pub fn ten_groups(trace: &Trace) -> Vec<Group> {
    let mut rng = StdRng::seed_from_u64(52);
    let mut trio = |attr: &str| -> Vec<FilterSpec> {
        let s = src_stat(trace, attr) * DELTA_SCALE;
        let mid: f64 = rng.gen_range(1.0..2.0);
        vec![
            dc(attr, s, 0.5),
            dc(attr, s * 2.0, 0.5),
            dc(attr, s * mid, 0.5),
        ]
    };
    let g1 = Group::new("G1 (DC1 fluoro)", trio("fluoro"));
    let g2 = Group::new("G2 (DC1 tmpr2)", trio("tmpr2"));
    let g3 = Group::new("G3 (DC1 tmpr4)", trio("tmpr4"));
    let g4 = Group::new("G4 (DC1 tmpr6)", trio("tmpr6"));

    let avg_attrs = ["tmpr2", "tmpr4", "tmpr6"];
    let s_avg = {
        // srcStatistics of the averaged series
        let ids: Vec<_> = avg_attrs
            .iter()
            .map(|a| trace.schema().attr(a).expect("attr"))
            .collect();
        let series: Vec<f64> = trace
            .tuples()
            .iter()
            .map(|t| ids.iter().map(|&id| t.get(id).unwrap_or(0.0)).sum::<f64>() / ids.len() as f64)
            .collect();
        gasf_sources::SourceStats::from_values(series).mean_abs_delta
    };
    let s_avg = s_avg * DELTA_SCALE;
    let mid: f64 = rng.gen_range(1.0..2.0);
    let g5 = Group::new(
        "G5 (DC3 tmpr2/4/6)",
        vec![
            FilterSpec::multi_attr_delta(avg_attrs, s_avg, s_avg * 0.5),
            FilterSpec::multi_attr_delta(avg_attrs, s_avg * 2.0, s_avg),
            FilterSpec::multi_attr_delta(avg_attrs, s_avg * mid, s_avg * mid * 0.5),
        ],
    );

    // DC2 on the fluoro trend: srcStatistics of the derivative series.
    let s_trend = {
        let id = trace.schema().attr("fluoro").expect("attr");
        let series = trace.series_of("fluoro").expect("series");
        let mut trends = Vec::with_capacity(series.len());
        for w in series.windows(2) {
            let dt = (w[1].0.as_secs_f64() - w[0].0.as_secs_f64()).max(1e-9);
            trends.push((w[1].1 - w[0].1) / dt);
        }
        let _ = id;
        gasf_sources::SourceStats::from_values(trends).mean_abs_delta * DELTA_SCALE
    };
    let mid2: f64 = rng.gen_range(1.0..2.0);
    let g6 = Group::new(
        "G6 (DC2 fluoro)",
        vec![
            FilterSpec::trend_delta("fluoro", s_trend * 2.0, s_trend),
            FilterSpec::trend_delta("fluoro", s_trend * 4.0, s_trend * 2.0),
            FilterSpec::trend_delta("fluoro", s_trend * 2.0 * mid2, s_trend * mid2),
        ],
    );

    // SS on tmpr4: 1 s windows, thresholds around the typical window range.
    let window = Micros::from_secs(1);
    let range = trace.stats("tmpr4").expect("attr").range();
    let g7 = Group::new(
        "G7 (SS tmpr4)",
        vec![
            FilterSpec::stratified_sample("tmpr4", window, range * 0.15, 50.0, 20.0),
            FilterSpec::stratified_sample("tmpr4", window, range * 0.30, 50.0, 20.0),
            FilterSpec::stratified_sample("tmpr4", window, range * 0.23, 50.0, 20.0),
        ],
    );

    let s4 = src_stat(trace, "tmpr4") * DELTA_SCALE;
    let s5 = src_stat(trace, "tmpr5") * DELTA_SCALE;
    let g8 = Group::new(
        "G8 (DC1+DC3+DC1)",
        vec![
            dc("tmpr4", s4, 0.5),
            FilterSpec::multi_attr_delta(avg_attrs, s_avg, s_avg * 0.5),
            dc("tmpr5", s5, 0.5),
        ],
    );
    let g9 = Group::new(
        "G9 (DC1+DC3+DC2)",
        vec![
            dc("tmpr4", s4, 0.5),
            FilterSpec::multi_attr_delta(avg_attrs, s_avg, s_avg * 0.5),
            FilterSpec::trend_delta("fluoro", s_trend * 2.0, s_trend),
        ],
    );
    let g10 = Group::new(
        "G10 (DC1+DC3+SS)",
        vec![
            dc("tmpr4", s4, 0.5),
            FilterSpec::multi_attr_delta(avg_attrs, s_avg, s_avg * 0.5),
            FilterSpec::stratified_sample("tmpr4", window, range * 0.10, 90.0, 50.0),
        ],
    );
    vec![g1, g2, g3, g4, g5, g6, g7, g8, g9, g10]
}

/// Ten stateless DC1 groups over the NAMOS channels — the sharded-engine
/// *scaling* workload (three filters each, deltas 1–3·srcStatistics,
/// slack 50 %, seeded per group).
///
/// [`ten_groups`] mixes stateful DC2/DC3 filter types, which restricts it
/// to the per-candidate-set algorithm; every group here is valid under
/// all three algorithms, so the `scaling` bench can sweep
/// shards × RG/PS/SI over one fixed workload.
pub fn ten_groups_stateless(trace: &Trace) -> Vec<Group> {
    let attrs = [
        "fluoro", "tmpr1", "tmpr2", "tmpr3", "tmpr4", "tmpr5", "tmpr6",
    ];
    (0..10)
        .map(|i| {
            let attr = attrs[i % attrs.len()];
            source_group(
                trace,
                attr,
                &format!("S{} (DC1 {attr})", i + 1),
                60 + i as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_sources::NamosBuoy;

    fn trace() -> Trace {
        NamosBuoy::new().tuples(2_000).seed(1).generate()
    }

    #[test]
    fn table_4_1_groups_are_valid() {
        let t = trace();
        for g in table_4_1(&t) {
            assert!(!g.specs.is_empty(), "{}", g.name);
            for s in &g.specs {
                s.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
            }
        }
    }

    #[test]
    fn ten_groups_are_valid_and_named() {
        let t = trace();
        let groups = ten_groups(&t);
        assert_eq!(groups.len(), 10);
        for g in &groups {
            assert_eq!(g.specs.len(), 3, "{}", g.name);
            for s in &g.specs {
                s.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
            }
        }
    }

    #[test]
    fn stateless_ten_groups_build_under_every_algorithm() {
        use gasf_core::engine::{Algorithm, GroupEngine};
        let t = trace();
        let groups = ten_groups_stateless(&t);
        assert_eq!(groups.len(), 10);
        for g in &groups {
            for algorithm in [
                Algorithm::RegionGreedy,
                Algorithm::PerCandidateSet,
                Algorithm::SelfInterested,
            ] {
                GroupEngine::builder(t.schema().clone())
                    .algorithm(algorithm)
                    .filters(g.specs.clone())
                    .build()
                    .unwrap_or_else(|e| panic!("{} under {algorithm:?}: {e}", g.name));
            }
        }
    }

    #[test]
    fn random_group_respects_axiom_1() {
        let t = trace();
        for seed in 0..5 {
            let specs = random_group(&t, "tmpr4", 10, (1.0, 6.0), 0.015, seed);
            assert_eq!(specs.len(), 10);
            for s in specs {
                s.validate().unwrap();
            }
        }
    }

    #[test]
    fn specs_are_deterministic() {
        let t = trace();
        let a = dc_hybrid(&t);
        let b = dc_hybrid(&t);
        assert_eq!(a.specs, b.specs);
    }
}
