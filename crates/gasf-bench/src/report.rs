//! Plain-text table rendering and JSON export for experiment results.

use serde::Serialize;
use std::fmt;

/// A rendered experiment artefact: one table or figure's data series.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (`fig4_2`, `tab5_3`, …).
    pub id: String,
    /// Paper artefact it reproduces.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row values (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, paper numbers, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the table as a JSON object. The workspace runs offline
    /// without a serde backend, and every cell is already a string, so the
    /// export is hand-rolled here.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{}", json_string(&self.id)));
        out.push_str(&format!(",\"title\":{}", json_string(&self.title)));
        out.push_str(&format!(
            ",\"headers\":{}",
            json_string_array(&self.headers)
        ));
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string_array(row));
        }
        out.push(']');
        out.push_str(&format!(",\"notes\":{}", json_string_array(&self.notes)));
        out.push('}');
        out
    }
}

/// Renders a slice of tables as a pretty-ish JSON array (one table per
/// line), the format the `experiments --json` flag writes.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[\n");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&t.to_json());
    }
    out.push_str("\n]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", cells.join(","))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            print_row(f, &self.headers)?;
            writeln!(
                f,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            )?;
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with four decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a box plot as `min/q1/med/q3/max (k outliers)`.
pub fn boxplot(b: &gasf_core::metrics::BoxPlot) -> String {
    format!(
        "{:.2}/{:.2}/{:.2}/{:.2}/{:.2} ({})",
        b.min,
        b.q1,
        b.median,
        b.q3,
        b.max,
        b.outliers.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("x1", "demo", ["algo", "O/I"]);
        t.row(["RG", "0.36"])
            .row(["SI", "0.46"])
            .note("lower is better");
        let out = t.to_string();
        assert!(out.contains("== x1 — demo =="));
        assert!(out.contains("algo"));
        assert!(out.contains("note: lower is better"));
        // rows aligned: each data line starts with padded algo column
        assert!(out.lines().any(|l| l.starts_with("RG  ")));
    }

    #[test]
    fn serializes_to_json() {
        let mut t = Table::new("x2", "de\"mo", ["a"]);
        t.row(["1"]).note("n1");
        let j = t.to_json();
        assert!(j.contains("\"id\":\"x2\""));
        assert!(j.contains("\"title\":\"de\\\"mo\""));
        assert!(j.contains("\"rows\":[[\"1\"]]"));
        let all = tables_to_json(&[t]);
        assert!(all.starts_with("[\n") && all.ends_with("]\n"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f4(0.00012), "0.0001");
        let b = gasf_core::metrics::BoxPlot::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(boxplot(&b).contains("2.00"));
    }
}
