//! Soak-run CLI: drives the million-subscriber soak (ROADMAP item 5)
//! and prints its outcome as one JSON object.
//!
//! ```text
//! cargo run -q --release -p gasf-bench --bin soak          # full: 10⁶ subscriptions
//! GASF_BENCH_SMOKE=1 cargo run -q --release -p gasf-bench --bin soak   # CI: 10⁴
//! ```
//!
//! Every run asserts the soak invariants ([`SoakOutcome::assert_sane`]):
//! deliveries happened, p50 ≤ p99 ≤ max, the group-aware path spent
//! fewer bytes than naive multicast, pressure throttled and degraded
//! headroom subscriptions, and calm restored every one of them. The
//! full run's numbers are recorded in `BENCH_baseline.json` (single-vCPU
//! caveat: wall-clock is one core doing a cluster's work).

use gasf_bench::soak::{run_soak, SoakConfig, SoakOutcome};
use std::time::Instant;

fn main() {
    let cfg = SoakConfig::from_env();
    eprintln!(
        "soak: {} subscriptions, {} tuples, {}x{} grid, parallelism {}",
        cfg.subscriptions, cfg.tuples, cfg.grid.0, cfg.grid.1, cfg.parallelism
    );
    let started = Instant::now();
    let outcome: SoakOutcome = run_soak(&cfg);
    let wall = started.elapsed();
    outcome.assert_sane();
    eprintln!(
        "soak: done in {:.1}s — p50 {} µs, p99 {} µs, saved {:.1}% of naive bytes",
        wall.as_secs_f64(),
        outcome.p50_us,
        outcome.p99_us,
        outcome.savings_ratio() * 100.0
    );
    println!("{}", outcome.to_json());
}
