//! Experiment CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--fast] [--json PATH] [all | <id>...]
//! experiments --list
//! ```

use gasf_bench::experiments::{self, Params, ALL_IDS};
use gasf_bench::report::{tables_to_json, Table};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut json_path: Option<String> = None;

    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(i) = args.iter().position(|a| a == "--fast") {
        fast = true;
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if i + 1 >= args.len() {
            eprintln!("--json needs a path");
            return ExitCode::FAILURE;
        }
        json_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    if args.is_empty() {
        eprintln!(
            "usage: experiments [--fast] [--json PATH] [all | id...]\n       experiments --list"
        );
        return ExitCode::FAILURE;
    }

    let params = if fast { Params::fast() } else { Params::full() };
    let mut tables: Vec<Table> = Vec::new();
    for arg in &args {
        if arg == "all" {
            tables.extend(experiments::run_all(&params));
        } else {
            match experiments::run(arg, &params) {
                Some(ts) => tables.extend(ts),
                None => {
                    eprintln!("unknown experiment `{arg}`; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    for t in &tables {
        println!("{t}");
    }
    if let Some(path) = json_path {
        let json = tables_to_json(&tables);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
