//! Engine-run helpers shared by all experiments.

use crate::specs::Group;
use gasf_core::cuts::TimeConstraint;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, OutputStrategy};
use gasf_core::metrics::EngineMetrics;
use gasf_core::quality::FilterSpec;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::VecSink;
use gasf_core::time::Micros;
use gasf_sources::Trace;

/// The five algorithm variants of Fig. 4.2 (Table 4.2's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Region-based greedy.
    Rg,
    /// Region-based greedy with timely cuts.
    RgC,
    /// Per-candidate-set greedy.
    Ps,
    /// Per-candidate-set greedy with timely cuts.
    PsC,
    /// Self-interested baseline.
    Si,
}

impl Variant {
    /// All five, in the paper's plotting order.
    pub const ALL: [Variant; 5] = [
        Variant::Rg,
        Variant::RgC,
        Variant::Ps,
        Variant::PsC,
        Variant::Si,
    ];

    /// The paper's abbreviation.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Rg => "RG",
            Variant::RgC => "RG+C",
            Variant::Ps => "PS",
            Variant::PsC => "PS+C",
            Variant::Si => "SI",
        }
    }

    /// The engine algorithm for this variant.
    pub fn algorithm(self) -> Algorithm {
        match self {
            Variant::Rg | Variant::RgC => Algorithm::RegionGreedy,
            Variant::Ps | Variant::PsC => Algorithm::PerCandidateSet,
            Variant::Si => Algorithm::SelfInterested,
        }
    }

    /// Whether this variant enables cuts.
    pub fn cuts(self) -> bool {
        matches!(self, Variant::RgC | Variant::PsC)
    }
}

/// Everything an experiment needs from one engine run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final engine metrics.
    pub metrics: EngineMetrics,
    /// All emissions, in release order.
    pub emissions: Vec<Emission>,
}

impl RunOutcome {
    /// Distinct output tuples (the O/I numerator).
    pub fn distinct_outputs(&self) -> u64 {
        self.metrics.output_tuples
    }

    /// Distinct output-tuple count within a half-open seq window
    /// (per-batch output-ratio accounting of §5.4).
    pub fn distinct_outputs_in(&self, lo: u64, hi: u64) -> usize {
        let mut seqs: Vec<u64> = self
            .emissions
            .iter()
            .map(|e| e.tuple.seq())
            .filter(|&s| s >= lo && s < hi)
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        seqs.len()
    }
}

/// Builds one engine for an experiment configuration.
///
/// # Panics
/// Panics on construction failure — experiment configurations are static
/// and a failure is a harness bug.
pub fn build_engine(
    trace: &Trace,
    specs: &[FilterSpec],
    algorithm: Algorithm,
    strategy: OutputStrategy,
    constraint: Option<TimeConstraint>,
) -> GroupEngine {
    let mut builder = GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
        .filters(specs.to_vec());
    if let Some(c) = constraint {
        builder = builder.time_constraint(c);
    }
    builder.build().expect("experiment spec must be valid")
}

/// Runs one engine configuration over a trace on the sink path (tuples
/// stream straight from the trace, emissions stream into one reused
/// collector).
///
/// # Panics
/// Panics on engine construction/run failure — experiment configurations
/// are static and a failure is a harness bug.
pub fn run_engine(
    trace: &Trace,
    specs: &[FilterSpec],
    algorithm: Algorithm,
    strategy: OutputStrategy,
    constraint: Option<TimeConstraint>,
) -> RunOutcome {
    let mut engine = build_engine(trace, specs, algorithm, strategy, constraint);
    let mut sink = VecSink::new();
    engine
        .run_into(trace.tuples().iter().cloned(), &mut sink)
        .expect("experiment trace must replay cleanly");
    RunOutcome {
        metrics: engine.into_metrics(),
        emissions: sink.into_vec(),
    }
}

/// Runs one of the five standard variants with a default cut constraint.
pub fn run_variant(
    trace: &Trace,
    specs: &[FilterSpec],
    variant: Variant,
    cut_constraint: Micros,
) -> RunOutcome {
    run_engine(
        trace,
        specs,
        variant.algorithm(),
        OutputStrategy::Earliest,
        variant
            .cuts()
            .then_some(TimeConstraint::max_delay(cut_constraint)),
    )
}

/// GA-output over SI-output ratio ("output ratio" of §4.7/§5.4);
/// `<= 1.0` by the never-worse-than-SI guarantee.
pub fn output_ratio(ga: &RunOutcome, si: &RunOutcome) -> f64 {
    if si.distinct_outputs() == 0 {
        return f64::NAN;
    }
    ga.distinct_outputs() as f64 / si.distinct_outputs() as f64
}

/// Per-batch output ratios (batches of `batch` input tuples), skipping
/// batches where SI produced nothing.
pub fn per_batch_output_ratios(ga: &RunOutcome, si: &RunOutcome, batch: u64) -> Vec<f64> {
    let n = ga.metrics.input_tuples.max(si.metrics.input_tuples);
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + batch).min(n);
        let s = si.distinct_outputs_in(lo, hi);
        if s > 0 {
            out.push(ga.distinct_outputs_in(lo, hi) as f64 / s as f64);
        }
        lo = hi;
    }
    out
}

/// Builds a [`ShardedEngine`] hosting one route per group (keyed by the
/// group's name, so shard placement follows the deterministic key hash)
/// at the requested parallelism — the configuration the `scaling` bench
/// and the parallel-pipeline example sweep.
///
/// # Panics
/// Panics on construction failure — experiment configurations are static
/// and a failure is a harness bug.
pub fn build_sharded_engine(
    trace: &Trace,
    groups: &[Group],
    algorithm: Algorithm,
    strategy: OutputStrategy,
    parallelism: usize,
) -> ShardedEngine {
    let mut builder = ShardedEngine::builder().parallelism(parallelism);
    for group in groups {
        builder = builder.route(
            &group.name,
            GroupEngine::builder(trace.schema().clone())
                .algorithm(algorithm)
                .output_strategy(strategy)
                .filters(group.specs.clone()),
        );
    }
    builder.build().expect("experiment spec must be valid")
}

/// The constant overlay-multicast latency added to reported per-tuple
/// latencies, as the paper does (§4.1.2 assumes end-to-end latency =
/// filtering delay + a constant overlay multicast cost; they measured
/// ~12 ms per tuple for SI, which is pure multicast).
pub const MULTICAST_CONSTANT: Micros = Micros(12_000);

/// Mean reported latency (filtering + multicast constant), milliseconds.
pub fn mean_latency_ms(outcome: &RunOutcome) -> f64 {
    outcome.metrics.mean_latency().as_millis_f64() + MULTICAST_CONSTANT.as_millis_f64()
}

/// Latency samples (filtering + multicast constant), milliseconds.
pub fn latency_samples_ms(outcome: &RunOutcome) -> Vec<f64> {
    outcome
        .metrics
        .latencies_us
        .iter()
        .map(|&us| us as f64 / 1000.0 + MULTICAST_CONSTANT.as_millis_f64())
        .collect()
}

/// CPU cost per input tuple in microseconds.
pub fn cpu_per_tuple_us(outcome: &RunOutcome) -> f64 {
    if outcome.metrics.input_tuples == 0 {
        return 0.0;
    }
    outcome.metrics.cpu.as_secs_f64() * 1e6 / outcome.metrics.input_tuples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_sources::NamosBuoy;

    fn trace() -> Trace {
        NamosBuoy::new().tuples(400).seed(1).generate()
    }

    fn specs(trace: &Trace) -> Vec<FilterSpec> {
        let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
        vec![
            FilterSpec::delta("tmpr4", s * 2.0, s),
            FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        ]
    }

    #[test]
    fn variants_cover_algorithms() {
        assert_eq!(Variant::ALL.len(), 5);
        assert_eq!(Variant::Rg.label(), "RG");
        assert!(Variant::PsC.cuts());
        assert!(!Variant::Ps.cuts());
        assert_eq!(Variant::Si.algorithm(), Algorithm::SelfInterested);
    }

    #[test]
    fn run_and_ratio() {
        let t = trace();
        let sp = specs(&t);
        let ga = run_variant(&t, &sp, Variant::Rg, Micros::from_millis(100));
        let si = run_variant(&t, &sp, Variant::Si, Micros::from_millis(100));
        assert_eq!(ga.metrics.input_tuples, 400);
        let r = output_ratio(&ga, &si);
        assert!(r > 0.0 && r <= 1.0, "ratio {r}");
        assert!(cpu_per_tuple_us(&ga) > 0.0);
        assert!(mean_latency_ms(&ga) >= 12.0);
        assert_eq!(latency_samples_ms(&ga).len(), ga.metrics.latencies_us.len());
    }

    #[test]
    fn per_batch_ratios_bounded() {
        let t = trace();
        let sp = specs(&t);
        let ga = run_variant(&t, &sp, Variant::Ps, Micros::from_millis(100));
        let si = run_variant(&t, &sp, Variant::Si, Micros::from_millis(100));
        let ratios = per_batch_output_ratios(&ga, &si, 100);
        assert!(!ratios.is_empty());
        for r in ratios {
            assert!(r > 0.0 && r <= 2.0, "per-batch ratio {r}");
        }
    }

    #[test]
    fn distinct_outputs_in_window() {
        let t = trace();
        let sp = specs(&t);
        let ga = run_variant(&t, &sp, Variant::Rg, Micros::from_millis(100));
        let total: usize = ga.distinct_outputs_in(0, u64::MAX);
        assert_eq!(total as u64, ga.distinct_outputs());
    }
}
