//! Effectiveness of timely cuts (Figs. 4.9–4.12).
//!
//! The paper linearly tightens the maximum region time from 125 ms
//! (`RG+C(01)`) down 16-fold to 8 ms (`RG+C(05)`) on the `DC_Fluoro`
//! group and reports latency, cut CPU cost, percent of regions cut and
//! the O/I impact.

use super::Params;
use crate::report::{f3, f4, Table};
use crate::runner::{cpu_per_tuple_us, mean_latency_ms, run_variant, Variant};
use crate::specs::dc_fluoro;
use gasf_core::time::Micros;

/// The five deadlines of Figs. 4.9–4.12, milliseconds.
pub const DEADLINES_MS: [u64; 5] = [125, 64, 32, 16, 8];

/// Which quantity a sweep table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutMetric {
    /// Fig. 4.9: latency per tuple.
    Latency,
    /// Fig. 4.10: CPU cost per tuple.
    Cpu,
    /// Fig. 4.11: percent of regions cut.
    RegionsCut,
    /// Fig. 4.12: O/I ratio.
    OiRatio,
}

impl CutMetric {
    fn id(self) -> &'static str {
        match self {
            CutMetric::Latency => "fig4_9",
            CutMetric::Cpu => "fig4_10",
            CutMetric::RegionsCut => "fig4_11",
            CutMetric::OiRatio => "fig4_12",
        }
    }

    fn title(self) -> &'static str {
        match self {
            CutMetric::Latency => "Fig 4.9: cuts affect latency for DC_Fluoro (ms/tuple)",
            CutMetric::Cpu => "Fig 4.10: CPU cost of cuts for DC_Fluoro (us/tuple)",
            CutMetric::RegionsCut => "Fig 4.11: percent of regions cut for DC_Fluoro",
            CutMetric::OiRatio => "Fig 4.12: cuts affect O/I ratios in DC_Fluoro",
        }
    }
}

/// Runs the deadline sweep and reports `metric` per deadline.
pub fn sweep_table(params: &Params, metric: CutMetric) -> Vec<Table> {
    let trace = params.namos(0);
    let group = dc_fluoro(&trace);
    let mut t = Table::new(
        metric.id(),
        metric.title(),
        ["variant", "deadline(ms)", "value"],
    );
    for (i, ms) in DEADLINES_MS.iter().enumerate() {
        let out = run_variant(&trace, &group.specs, Variant::RgC, Micros::from_millis(*ms));
        let value = match metric {
            CutMetric::Latency => f3(mean_latency_ms(&out)),
            CutMetric::Cpu => f3(cpu_per_tuple_us(&out)),
            CutMetric::RegionsCut => format!("{:.1}%", out.metrics.cut_fraction() * 100.0),
            CutMetric::OiRatio => f4(out.metrics.oi_ratio()),
        };
        t.row([format!("RG+C(0{})", i + 1), ms.to_string(), value]);
    }
    match metric {
        CutMetric::Latency => {
            t.note("paper: latency drops from ~70 ms to ~20 ms as the deadline tightens");
        }
        CutMetric::Cpu => {
            t.note("paper: cut enforcement costs < 0.5 ms per tuple");
        }
        CutMetric::RegionsCut => {
            t.note("paper: % regions cut increases consistently as the deadline shrinks");
        }
        CutMetric::OiRatio => {
            t.note("paper: O/I only slightly affected; never worse than SI");
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 800,
            reps: 1,
        }
    }

    fn col(metric: CutMetric) -> Vec<f64> {
        sweep_table(&p(), metric)[0]
            .rows
            .iter()
            .map(|r| r[2].trim_end_matches('%').parse().unwrap())
            .collect()
    }

    #[test]
    fn latency_falls_with_tighter_deadlines() {
        let lats = col(CutMetric::Latency);
        assert!(
            lats.first().unwrap() > lats.last().unwrap(),
            "latency must fall: {lats:?}"
        );
    }

    #[test]
    fn cut_fraction_rises_with_tighter_deadlines() {
        let cuts = col(CutMetric::RegionsCut);
        assert!(
            cuts.last().unwrap() >= cuts.first().unwrap(),
            "cut % must rise: {cuts:?}"
        );
        assert!(*cuts.last().unwrap() > 0.0);
    }

    #[test]
    fn oi_stays_bounded() {
        let ois = col(CutMetric::OiRatio);
        for oi in &ois {
            assert!(*oi > 0.0 && *oi <= 1.0, "{ois:?}");
        }
        // tighter deadlines should not *improve* O/I
        assert!(*ois.last().unwrap() >= ois.first().unwrap() - 0.05);
    }
}
