//! One runner per table/figure of the paper's evaluation.
//!
//! Every runner returns [`Table`]s whose rows mirror the paper's artefact;
//! EXPERIMENTS.md records the paper-vs-measured comparison.

mod ablations;
mod ch4_basic;
mod ch4_cuts;
mod ch4_factors;
mod ch4_output;
mod ch4_sources;
mod ch5;
mod network;

use crate::report::Table;
use gasf_sources::{NamosBuoy, Trace};

/// Workload sizing shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Tuples per trace.
    pub tuples: usize,
    /// Independent repetitions (different generator seeds).
    pub reps: u64,
}

impl Params {
    /// Paper-scale runs (§4.2: "more than ten thousand measurements",
    /// box plots over ten results).
    pub fn full() -> Self {
        Params {
            tuples: 10_000,
            reps: 10,
        }
    }

    /// Reduced sizing for CI/tests.
    pub fn fast() -> Self {
        Params {
            tuples: 1_000,
            reps: 3,
        }
    }

    /// The NAMOS trace for repetition `rep`.
    pub fn namos(&self, rep: u64) -> Trace {
        NamosBuoy::new()
            .tuples(self.tuples)
            .seed(rep + 1)
            .generate()
    }
}

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "tab4_1",
    "fig4_2",
    "fig4_3",
    "fig4_6",
    "fig4_9",
    "fig4_10",
    "fig4_11",
    "fig4_12",
    "fig4_13",
    "fig4_14",
    "fig4_15",
    "fig4_16",
    "fig4_17",
    "fig4_18",
    "fig4_19",
    "fig4_20",
    "fig4_21",
    "fig4_24",
    "tab5_2",
    "fig5_2",
    "tab5_3",
    "fig5_3",
    "fig1_3",
    "sec4_1_2",
    "sec5_5_1",
    "abl_regions",
    "abl_predictor",
    "abl_stateful",
];

/// Runs one experiment by id; `None` for unknown ids.
pub fn run(id: &str, params: &Params) -> Option<Vec<Table>> {
    let tables = match id {
        "tab4_1" => ch4_basic::tab4_1(params),
        "fig4_2" => ch4_basic::fig4_2(params),
        "fig4_3" => ch4_basic::fig4_3(params),
        "fig4_6" => ch4_basic::fig4_6(params),
        "fig4_9" => ch4_cuts::sweep_table(params, ch4_cuts::CutMetric::Latency),
        "fig4_10" => ch4_cuts::sweep_table(params, ch4_cuts::CutMetric::Cpu),
        "fig4_11" => ch4_cuts::sweep_table(params, ch4_cuts::CutMetric::RegionsCut),
        "fig4_12" => ch4_cuts::sweep_table(params, ch4_cuts::CutMetric::OiRatio),
        "fig4_13" => ch4_output::fig4_13(params),
        "fig4_14" => ch4_output::fig4_14(params),
        "fig4_15" => ch4_factors::fig4_15(params),
        "fig4_16" => ch4_factors::fig4_16(params),
        "fig4_17" => ch4_factors::fig4_17(params),
        "fig4_18" => ch4_factors::fig4_18(params),
        "fig4_19" => ch4_sources::fig4_19(params),
        "fig4_20" => ch4_sources::fig4_20(params),
        "fig4_21" => ch4_sources::fig4_21(params),
        "fig4_24" => ch4_sources::fig4_24(params),
        "tab5_2" => ch5::tab5_2(params),
        "fig5_2" => ch5::fig5_2(params),
        "tab5_3" => ch5::tab5_3(params),
        "fig5_3" => ch5::fig5_3(params),
        "fig1_3" => network::fig1_3(params),
        "sec4_1_2" => network::sec4_1_2(params),
        "sec5_5_1" => network::sec5_5_1(params),
        "abl_regions" => ablations::abl_regions(params),
        "abl_predictor" => ablations::abl_predictor(params),
        "abl_stateful" => ablations::abl_stateful(params),
        _ => return None,
    };
    Some(tables)
}

/// Runs every experiment.
pub fn run_all(params: &Params) -> Vec<Table> {
    ALL_IDS
        .iter()
        .flat_map(|id| run(id, params).expect("registered id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_is_registered() {
        let p = Params {
            tuples: 200,
            reps: 1,
        };
        for id in ALL_IDS {
            let tables = run(id, &p).unwrap_or_else(|| panic!("{id} unregistered"));
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id}:{} has no rows", t.id);
            }
        }
        assert!(run("nope", &p).is_none());
    }
}
