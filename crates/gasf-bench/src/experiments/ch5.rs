//! Extensible-framework evaluation (Tables 5.1–5.3, Figs. 5.2–5.3): ten
//! groups mixing DC1/DC2/DC3/SS filter types over the NAMOS trace.

use super::Params;
use crate::report::{f3, f4, Table};
use crate::runner::{per_batch_output_ratios, run_variant, Variant};
use crate::specs::ten_groups;
use gasf_core::time::Micros;

const CUT: Micros = Micros::from_millis(125);

/// Tables 5.1/5.2 — the ten groups' specifications.
pub fn tab5_2(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let mut t = Table::new(
        "tab5_2",
        "Table 5.2: specifications for ten groups of filters (types of Table 5.1)",
        ["group", "filter 1", "filter 2", "filter 3"],
    );
    for g in ten_groups(&trace) {
        let mut cells = vec![g.name.clone()];
        cells.extend(g.specs.iter().map(|s| s.to_string()));
        t.row(cells);
    }
    vec![t]
}

/// Fig. 5.2 — benefit of group-aware filtering: average and median
/// per-100-tuple-batch output ratio (GA vs SI) for the ten groups.
pub fn fig5_2(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let mut t = Table::new(
        "fig5_2",
        "Fig 5.2: output ratio of ten groups of filters (lower is better)",
        ["group", "average", "median"],
    );
    for g in ten_groups(&trace) {
        let ga = run_variant(&trace, &g.specs, Variant::Ps, CUT);
        let si = run_variant(&trace, &g.specs, Variant::Si, CUT);
        let mut ratios = per_batch_output_ratios(&ga, &si, 100);
        if ratios.is_empty() {
            continue;
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let median = ratios[ratios.len() / 2];
        t.row([g.name.clone(), f4(avg), f4(median)]);
    }
    t.note("paper: eight of ten groups average below 0.80");
    vec![t]
}

/// Table 5.3 — average CPU cost per batch of 100 tuples, group-aware vs
/// self-interested.
pub fn tab5_3(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let mut t = Table::new(
        "tab5_3",
        "Table 5.3: average CPU cost per batch of 100 tuples (ms)",
        ["group", "group-aware", "self-interested"],
    );
    for g in ten_groups(&trace) {
        let ga = run_variant(&trace, &g.specs, Variant::Ps, CUT);
        let si = run_variant(&trace, &g.specs, Variant::Si, CUT);
        let per_batch = |out: &crate::runner::RunOutcome| {
            out.metrics.cpu.as_secs_f64() * 1e3 / (out.metrics.input_tuples as f64 / 100.0)
        };
        t.row([g.name.clone(), f3(per_batch(&ga)), f3(per_batch(&si))]);
    }
    t.note("paper: 22-685 ms per batch on 2005 Java; ratios matter, complex filters (DC2/DC3) cost more");
    vec![t]
}

/// Fig. 5.3 — CPU overhead ratios (group-aware over self-interested).
pub fn fig5_3(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig5_3",
        "Fig 5.3: CPU overhead ratios (group-aware / self-interested)",
        ["group", "average", "median"],
    );
    let names: Vec<String> = ten_groups(&params.namos(0))
        .into_iter()
        .map(|g| g.name)
        .collect();
    for (gi, name) in names.iter().enumerate() {
        let mut ratios = Vec::new();
        for rep in 0..params.reps {
            let trace = params.namos(rep);
            let g = &ten_groups(&trace)[gi];
            let ga = run_variant(&trace, &g.specs, Variant::Ps, CUT);
            let si = run_variant(&trace, &g.specs, Variant::Si, CUT);
            let ratio = ga.metrics.cpu.as_secs_f64() / si.metrics.cpu.as_secs_f64().max(1e-12);
            ratios.push(ratio);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        t.row([name.clone(), f3(avg), f3(ratios[ratios.len() / 2])]);
    }
    t.note("paper: overhead up to ~2.8x, group coordination roughly doubles CPU");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 1_200,
            reps: 1,
        }
    }

    #[test]
    fn tab5_2_has_ten_groups() {
        let t = &tab5_2(&p())[0];
        assert_eq!(t.rows.len(), 10);
    }

    #[test]
    fn fig5_2_ratios_are_sane() {
        let t = &fig5_2(&p())[0];
        assert!(t.rows.len() >= 8, "most groups produce batches");
        for row in &t.rows {
            let avg: f64 = row[1].parse().unwrap();
            assert!(avg > 0.1 && avg <= 1.3, "{}: {avg}", row[0]);
        }
    }

    #[test]
    fn overhead_ratio_at_least_one_ish() {
        let t = &fig5_3(&p())[0];
        for row in &t.rows {
            let r: f64 = row[1].parse().unwrap();
            assert!(r > 0.5 && r < 30.0, "{}: {r}", row[0]);
        }
    }

    #[test]
    fn tab5_3_costs_positive() {
        let t = &tab5_3(&p())[0];
        for row in &t.rows {
            assert!(row[1].parse::<f64>().unwrap() > 0.0);
            assert!(row[2].parse::<f64>().unwrap() > 0.0);
        }
    }
}
