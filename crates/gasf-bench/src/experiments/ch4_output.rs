//! Effect of output strategies (Figs. 4.13–4.14).
//!
//! §4.6 compares the per-candidate-set algorithm under the default
//! (earliest/region) strategy, big batched windows — which backlog tuples —
//! and the per-candidate-set output pattern, which trades ordering for
//! latency.

use super::Params;
use crate::report::{boxplot, f3, Table};
use crate::runner::{cpu_per_tuple_us, latency_samples_ms, run_engine};
use crate::specs::dc_fluoro;
use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::metrics::BoxPlot;

fn strategies() -> Vec<(&'static str, Algorithm, OutputStrategy)> {
    vec![
        ("PS", Algorithm::PerCandidateSet, OutputStrategy::Earliest),
        (
            "PS(B)-50",
            Algorithm::PerCandidateSet,
            OutputStrategy::Batched(50),
        ),
        (
            "PS(B)-200",
            Algorithm::PerCandidateSet,
            OutputStrategy::Batched(200),
        ),
        (
            "PS(Pcs)",
            Algorithm::PerCandidateSet,
            OutputStrategy::PerCandidateSet,
        ),
        ("SI", Algorithm::SelfInterested, OutputStrategy::Earliest),
    ]
}

/// Fig. 4.13 — output strategy vs. data timeliness.
pub fn fig4_13(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let group = dc_fluoro(&trace);
    let mut t = Table::new(
        "fig4_13",
        "Fig 4.13: output strategy affects data timeliness (ms/tuple)",
        ["strategy", "mean", "min/q1/med/q3/max (outliers)"],
    );
    for (label, algo, strategy) in strategies() {
        let out = run_engine(&trace, &group.specs, algo, strategy, None);
        let samples = latency_samples_ms(&out);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let b = BoxPlot::from_samples(&samples).expect("non-empty");
        t.row([label.to_string(), f3(mean), boxplot(&b)]);
    }
    t.note("paper: Pcs cuts ~70 ms to ~50 ms; big batches backlog dramatically; SI ~12 ms");
    vec![t]
}

/// Fig. 4.14 — CPU cost of output strategies.
pub fn fig4_14(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let group = dc_fluoro(&trace);
    let mut t = Table::new(
        "fig4_14",
        "Fig 4.14: CPU cost of output strategies (us/tuple)",
        ["strategy", "cpu/tuple"],
    );
    for (label, algo, strategy) in strategies() {
        let out = run_engine(&trace, &group.specs, algo, strategy, None);
        t.row([label.to_string(), f3(cpu_per_tuple_us(&out))]);
    }
    t.note("paper: batched output avoids region-closure checks, shaving ~1 ms of 1.3 ms");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 800,
            reps: 1,
        }
    }

    #[test]
    fn pcs_is_not_slower_than_earliest() {
        let t = &fig4_13(&p())[0];
        let mean = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(mean("PS(Pcs)") <= mean("PS") + 1e-9);
        assert!(mean("PS(B)-200") >= mean("PS"));
        assert!(mean("SI") < mean("PS"));
    }

    #[test]
    fn fig4_14_has_all_strategies() {
        let t = &fig4_14(&p())[0];
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            let cpu: f64 = r[1].parse().unwrap();
            assert!(cpu > 0.0);
        }
    }
}
