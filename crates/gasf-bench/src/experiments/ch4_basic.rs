//! Table 4.1 and the basic-results figures (Figs. 4.2–4.8).

use super::Params;
use crate::report::{boxplot, f3, f4, Table};
use crate::runner::{cpu_per_tuple_us, latency_samples_ms, run_variant, Variant};
use crate::specs::table_4_1;
use gasf_core::metrics::BoxPlot;
use gasf_core::time::Micros;

/// The "large enough that few regions are cut" group constraint used for
/// the +C variants of the basic experiments (paper: cuts had little O/I
/// impact in Fig. 4.2 because the constraint was loose).
pub const LOOSE_CUT: Micros = Micros::from_millis(125);

/// Table 4.1 — specifications for the three groups of filters.
pub fn tab4_1(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let mut t = Table::new(
        "tab4_1",
        "Table 4.1: specifications for groups of filters",
        ["group", "filter"],
    );
    for g in table_4_1(&trace) {
        for s in &g.specs {
            t.row([g.name.clone(), s.to_string()]);
        }
    }
    t.note("deltas derived from srcStatistics exactly as §4.3 prescribes");
    vec![t]
}

/// Fig. 4.2 — O/I ratios for the three groups × five algorithm variants.
pub fn fig4_2(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_2",
        "Fig 4.2: O/I ratios for three groups of group-aware filters",
        ["group", "RG", "RG+C", "PS", "PS+C", "SI"],
    );
    let trace = params.namos(0);
    for g in table_4_1(&trace) {
        let mut cells = vec![g.name.clone()];
        for v in Variant::ALL {
            let out = run_variant(&trace, &g.specs, v, LOOSE_CUT);
            cells.push(f4(out.metrics.oi_ratio()));
        }
        t.row(cells);
    }
    t.note("paper: group-aware ~0.33-0.38 vs SI 0.46-0.51; all GA < SI");
    vec![t]
}

/// Figs. 4.3–4.5 — CPU cost per tuple (box plots over `reps` runs) for the
/// three groups.
pub fn fig4_3(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_3",
        "Figs 4.3-4.5: CPU cost per tuple (us), box over runs",
        ["group", "variant", "min/q1/med/q3/max (outliers)"],
    );
    let names: Vec<String> = table_4_1(&params.namos(0))
        .into_iter()
        .map(|g| g.name)
        .collect();
    for (gi, gname) in names.iter().enumerate() {
        for v in Variant::ALL {
            let mut samples = Vec::new();
            for rep in 0..params.reps {
                let trace = params.namos(rep);
                let group = &table_4_1(&trace)[gi];
                let out = run_variant(&trace, &group.specs, v, LOOSE_CUT);
                samples.push(cpu_per_tuple_us(&out));
            }
            let b = BoxPlot::from_samples(&samples).expect("non-empty samples");
            t.row([gname.clone(), v.label().to_string(), boxplot(&b)]);
        }
    }
    t.note("paper: group-aware >10x SI cost but ~1 ms/tuple on 2005 Java; ordering matters, not absolutes");
    vec![t]
}

/// Figs. 4.6–4.8 — source-to-application latency per tuple.
pub fn fig4_6(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_6",
        "Figs 4.6-4.8: latency per tuple (ms, incl. multicast constant)",
        ["group", "variant", "mean", "min/q1/med/q3/max (outliers)"],
    );
    let trace = params.namos(0);
    for g in table_4_1(&trace) {
        for v in Variant::ALL {
            let out = run_variant(&trace, &g.specs, v, LOOSE_CUT);
            let samples = latency_samples_ms(&out);
            let b = BoxPlot::from_samples(&samples).expect("non-empty samples");
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            t.row([g.name.clone(), v.label().to_string(), f3(mean), boxplot(&b)]);
        }
    }
    t.note("paper: SI ~12 ms (multicast only), group-aware ~70 ms dominated by waiting for region tuples");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 600,
            reps: 2,
        }
    }

    #[test]
    fn fig4_2_shows_ga_beating_si() {
        let t = &fig4_2(&p())[0];
        for row in &t.rows {
            let rg: f64 = row[1].parse().unwrap();
            let si: f64 = row[5].parse().unwrap();
            assert!(rg <= si + 1e-9, "{}: RG {rg} > SI {si}", row[0]);
        }
    }

    #[test]
    fn fig4_6_si_latency_is_multicast_only() {
        let t = &fig4_6(&p())[0];
        for row in t.rows.iter().filter(|r| r[1] == "SI") {
            let mean: f64 = row[2].parse().unwrap();
            assert!((mean - 12.0).abs() < 0.5, "SI latency {mean}");
        }
        // group-aware latency strictly higher than SI
        for row in t.rows.iter().filter(|r| r[1] == "RG") {
            let mean: f64 = row[2].parse().unwrap();
            assert!(mean > 12.0, "RG latency {mean}");
        }
    }

    #[test]
    fn tab4_1_lists_ten_filters() {
        let t = &tab4_1(&p())[0];
        assert_eq!(t.rows.len(), 10); // 4 + 3 + 3
    }
}
