//! Factors that affect performance (Figs. 4.15–4.18): slack, delta and
//! group size.

use super::Params;
use crate::report::{boxplot, f3, f4, Table};
use crate::runner::{output_ratio, run_variant, Variant};
use crate::specs::{random_group, DELTA_SCALE};
use gasf_core::metrics::BoxPlot;
use gasf_core::quality::FilterSpec;
use gasf_core::time::Micros;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CUT: Micros = Micros::from_millis(125);

/// Fig. 4.15 — slack's effect on the performance of DC filters.
///
/// `DC_Tmpr`-style group (deltas 1·/2·/1.5·srcStatistics on `tmpr4`),
/// slack swept from 3 % to 50 % of the corresponding delta.
pub fn fig4_15(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_15",
        "Fig 4.15: slack's effect on DC-type filters (output ratio vs SI)",
        ["slack (% of delta)", "output ratio"],
    );
    let trace = params.namos(0);
    let s = trace.stats("tmpr4").expect("attr").mean_abs_delta * DELTA_SCALE;
    for slack_pct in [3.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let frac = slack_pct / 100.0;
        let specs: Vec<FilterSpec> = [1.0, 2.0, 1.5]
            .iter()
            .map(|m| FilterSpec::delta("tmpr4", s * m, s * m * frac))
            .collect();
        let ga = run_variant(&trace, &specs, Variant::Rg, CUT);
        let si = run_variant(&trace, &specs, Variant::Si, CUT);
        t.row([format!("{slack_pct:.0}%"), f4(output_ratio(&ga, &si))]);
    }
    t.note("paper: ratio falls from ~1.0 at tiny slack to ~0.74 at 50% slack");
    vec![t]
}

/// Fig. 4.16 — delta's effect: two filters fixed at 2·/3·srcStatistics,
/// the third swept across 1–2·srcStatistics; slack fixed at
/// 0.5·srcStatistics.
pub fn fig4_16(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_16",
        "Fig 4.16: delta's effect on DC-type filters (output ratio vs SI)",
        ["third delta (x srcStat)", "average", "median"],
    );
    let steps = 11usize;
    for i in 0..steps {
        let mult = 1.0 + i as f64 / (steps - 1) as f64;
        let mut ratios = Vec::new();
        for rep in 0..params.reps {
            let trace = params.namos(rep);
            let s = trace.stats("tmpr4").expect("attr").mean_abs_delta * DELTA_SCALE;
            let slack = s * 0.5;
            let specs = vec![
                FilterSpec::delta("tmpr4", s * 2.0, slack.min(s)),
                FilterSpec::delta("tmpr4", s * 3.0, slack.min(s * 1.5)),
                FilterSpec::delta("tmpr4", s * mult, slack.min(s * mult / 2.0)),
            ];
            let ga = run_variant(&trace, &specs, Variant::Rg, CUT);
            let si = run_variant(&trace, &specs, Variant::Si, CUT);
            ratios.push(output_ratio(&ga, &si));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let median = ratios[ratios.len() / 2];
        t.row([format!("{mult:.2}"), f4(avg), f4(median)]);
    }
    t.note("paper: mostly level curve with occasional jumps where candidate-set overlap changes");
    vec![t]
}

/// Fig. 4.17 — group size's effect on the output ratio (box plots over 10
/// random groups per size).
pub fn fig4_17(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_17",
        "Fig 4.17: group size's effect on DC filters (output ratio vs SI)",
        ["group size", "median", "min/q1/med/q3/max (outliers)"],
    );
    let trace = params.namos(0);
    let s = trace.stats("tmpr4").expect("attr").mean_abs_delta;
    let sizes: &[usize] = &[3, 5, 7, 9, 11, 13, 15, 17, 20];
    for &n in sizes {
        let mut ratios = Vec::new();
        for rep in 0..params.reps {
            let specs = random_group(
                &trace,
                "tmpr4",
                n,
                (DELTA_SCALE, 6.0 * DELTA_SCALE),
                s,
                rep * 100 + n as u64,
            );
            let ga = run_variant(&trace, &specs, Variant::Rg, CUT);
            let si = run_variant(&trace, &specs, Variant::Si, CUT);
            ratios.push(output_ratio(&ga, &si));
        }
        let b = BoxPlot::from_samples(&ratios).expect("non-empty");
        t.row([n.to_string(), f4(b.median), boxplot(&b)]);
    }
    t.note("paper: downward trend in the median output ratio as the group grows");
    vec![t]
}

/// Fig. 4.18 — group size's effect on CPU cost (per batch of 100 tuples),
/// group-aware vs self-interested.
pub fn fig4_18(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_18",
        "Fig 4.18: group size's effect on CPU cost (ms per 100-tuple batch)",
        ["group size", "group-aware", "self-interested"],
    );
    let trace = params.namos(0);
    let s = trace.stats("tmpr4").expect("attr").mean_abs_delta;
    let mut rng = StdRng::seed_from_u64(418);
    for n in (3..=20).step_by(2) {
        let specs = random_group(
            &trace,
            "tmpr4",
            n,
            (DELTA_SCALE, 6.0 * DELTA_SCALE),
            s,
            rng.gen(),
        );
        let ga = run_variant(&trace, &specs, Variant::Rg, CUT);
        let si = run_variant(&trace, &specs, Variant::Si, CUT);
        let per_batch = |out: &crate::runner::RunOutcome| {
            out.metrics.cpu.as_secs_f64() * 1e3 / (out.metrics.input_tuples as f64 / 100.0)
        };
        t.row([n.to_string(), f3(per_batch(&ga)), f3(per_batch(&si))]);
    }
    t.note("paper: roughly linear growth; group-aware ~2x the SI cost");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 800,
            reps: 2,
        }
    }

    #[test]
    fn slack_monotonically_helps() {
        let t = &fig4_15(&p())[0];
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last <= first,
            "more slack must not hurt: 3% -> {first}, 50% -> {last}"
        );
        assert!(first > 0.9, "tiny slack leaves little sharing: {first}");
    }

    #[test]
    fn ratios_bounded_by_one() {
        for table in [fig4_16(&p()), fig4_17(&p())] {
            for row in &table[0].rows {
                let v: f64 = row[1].parse().unwrap();
                assert!(v > 0.0 && v <= 1.0 + 1e-9, "{v}");
            }
        }
    }

    #[test]
    fn cpu_grows_with_group_size() {
        // Wall-clock measurements wobble under parallel test load, so only
        // assert the robust aggregate trends.
        let t = &fig4_18(&p())[0];
        let ga: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let si: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let half = ga.len() / 2;
        let small: f64 = ga[..half].iter().sum();
        let large: f64 = ga[half..].iter().sum();
        assert!(
            large > small,
            "bigger groups should cost more overall: {ga:?}"
        );
        let ga_total: f64 = ga.iter().sum();
        let si_total: f64 = si.iter().sum();
        assert!(
            ga_total >= si_total * 0.7,
            "group coordination cannot be much cheaper than SI: GA {ga_total} vs SI {si_total}"
        );
    }
}
