//! Network-level experiments: the Fig. 1.3 bandwidth trade-off, the
//! §4.1.2 overlay-multicast calibration and the §5.5.1 chlorine scenario.

use super::Params;
use crate::report::{f3, Table};
use crate::specs::source_group;
use gasf_core::engine::Algorithm;
use gasf_core::quality::FilterSpec;
use gasf_core::schema::Schema;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig};
use gasf_sources::{ChlorinePlume, NamosBuoy, SourceKind};

fn deploy(
    algorithm: Algorithm,
    schema: Schema,
    specs: &[FilterSpec],
) -> (Middleware, gasf_solar::SourceId) {
    let overlay = Overlay::new(Topology::ring(7).build());
    let mut mw = Middleware::with_config(
        overlay,
        MiddlewareConfig {
            algorithm,
            ..Default::default()
        },
    );
    let src = mw
        .register_source("src", NodeId(0), schema)
        .expect("source registers");
    for (i, spec) in specs.iter().enumerate() {
        let _ = mw
            .subscribe(
                format!("app{i}"),
                NodeId((2 + i as u32 * 2) % 7),
                src,
                spec.clone(),
            )
            .expect("subscription");
    }
    mw.deploy().expect("deploy");
    (mw, src)
}

/// Fig. 1.3 — the bandwidth trade-off: no filtering, self-interested
/// filtering + multicast, group-aware filtering + multicast.
pub fn fig1_3(params: &Params) -> Vec<Table> {
    let trace = NamosBuoy::new().tuples(params.tuples).seed(1).generate();
    let stats = trace.stats("fluoro").expect("attr").mean_abs_delta;
    let specs: Vec<FilterSpec> = [1.2, 2.0, 2.6]
        .iter()
        .map(|m| FilterSpec::delta("fluoro", stats * m, stats * m * 0.5))
        .collect();

    // (a) no filtering: every tuple multicast to every app.
    let no_filter_bytes = {
        let mut overlay = Overlay::new(Topology::ring(7).build());
        let members: Vec<NodeId> = vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6)];
        let g = overlay.create_group("raw", &members).expect("group");
        let size = trace.tuples()[0].wire_size();
        for _ in trace.tuples() {
            overlay
                .multicast(g, NodeId(0), &members[1..], size)
                .expect("multicast");
        }
        overlay.total_bytes()
    };

    // (b) self-interested filtering + multicast, (c) group-aware.
    let run_mw = |algorithm: Algorithm| {
        let (mut mw, src) = deploy(algorithm, trace.schema().clone(), &specs);
        mw.run_trace(src, trace.tuples().to_vec())
            .expect("middleware run")
            .network_bytes
    };
    let si_bytes = run_mw(Algorithm::SelfInterested);
    let ga_bytes = run_mw(Algorithm::RegionGreedy);

    let mut t = Table::new(
        "fig1_3",
        "Fig 1.3: network bandwidth consumption per dissemination strategy",
        ["strategy", "bytes on wire", "vs no-filtering"],
    );
    for (name, bytes) in [
        ("no filtering + multicast", no_filter_bytes),
        ("multicast w/ filtering (SI)", si_bytes),
        ("multicast w/ group-aware filtering", ga_bytes),
    ] {
        t.row([
            name.to_string(),
            bytes.to_string(),
            f3(bytes as f64 / no_filter_bytes as f64),
        ]);
    }
    t.note("expected ordering: no-filtering > SI > group-aware (Fig 1.3's three bands)");
    vec![t]
}

/// §4.1.2 — overlay multicast delay on the 7-node, 1 Mbps Emulab-style
/// ring (paper measured ~130 ms).
pub fn sec4_1_2(_params: &Params) -> Vec<Table> {
    let mut overlay = Overlay::new(Topology::ring(7).bandwidth_bps(1_000_000).build());
    let members: Vec<NodeId> = (0..7).map(NodeId).collect();
    let g = overlay.create_group("cal", &members).expect("group");
    let d = overlay
        .multicast(g, NodeId(0), &members[1..], 88)
        .expect("multicast");
    let mut t = Table::new(
        "sec4_1_2",
        "overlay multicast delay calibration (7-node ring, 1 Mbps)",
        ["metric", "value (ms)"],
    );
    t.row([
        "mean recipient latency",
        &f3(d.mean_latency().as_millis_f64()),
    ]);
    t.row([
        "max recipient latency",
        &f3(d.max_latency().as_millis_f64()),
    ]);
    t.note("paper measured ~130 ms for Solar's overlay multicasting on Emulab");
    vec![t]
}

/// §5.5.1 — the chlorine train-derailment scenario: three
/// command-and-control applications with different granularities; the
/// paper reported ~15 % additional bandwidth saving over SI and <0.25 s
/// per 60 tuples of filtering CPU.
pub fn sec5_5_1(params: &Params) -> Vec<Table> {
    let trace = ChlorinePlume::new()
        .tuples(params.tuples)
        .seed(7)
        .generate();
    let _ = SourceKind::Chlorine; // documented mapping
    let g = source_group(&trace, "chlorine", "DC_chlorine", 551);

    let run_mw = |algorithm: Algorithm| {
        let (mut mw, src) = deploy(algorithm, trace.schema().clone(), &g.specs);
        mw.run_trace(src, trace.tuples().to_vec()).expect("run")
    };
    let si = run_mw(Algorithm::SelfInterested);
    let ga = run_mw(Algorithm::PerCandidateSet);

    let saving = 1.0 - ga.network_bytes as f64 / si.network_bytes as f64;
    let cpu_per_60_ms = ga.engine.cpu.as_secs_f64() * 1e3 / (ga.engine.input_tuples as f64 / 60.0);
    let mut t = Table::new(
        "sec5_5_1",
        "chlorine monitoring scenario (train-derailment exercise)",
        ["metric", "value"],
    );
    t.row(["SI network bytes", &si.network_bytes.to_string()]);
    t.row(["GA network bytes", &ga.network_bytes.to_string()]);
    t.row([
        "additional saving over SI",
        &format!("{:.1}%", saving * 100.0),
    ]);
    t.row([
        "GA filtering CPU per 60 tuples",
        &format!("{cpu_per_60_ms:.3} ms"),
    ]);
    t.row([
        "mean e2e latency",
        &format!("{:.1} ms", ga.mean_e2e_latency().as_millis_f64()),
    ]);
    t.note("paper: ~15% further saving over SI; <250 ms per 60 tuples (PS algorithm)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 1_000,
            reps: 1,
        }
    }

    #[test]
    fn fig1_3_ordering_holds() {
        let t = &fig1_3(&p())[0];
        let bytes: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(bytes[0] > bytes[1], "no-filtering > SI");
        assert!(bytes[1] >= bytes[2], "SI >= group-aware");
    }

    #[test]
    fn overlay_calibration_in_solar_ballpark() {
        let t = &sec4_1_2(&p())[0];
        let max_ms: f64 = t.rows[1][1].parse().unwrap();
        assert!((30.0..400.0).contains(&max_ms), "{max_ms}");
    }

    #[test]
    fn chlorine_scenario_saves_bandwidth() {
        let t = &sec5_5_1(&p())[0];
        let saving: f64 = t.rows[2][1].trim_end_matches('%').parse().unwrap();
        assert!(saving >= 0.0, "GA must not cost more than SI: {saving}%");
    }
}
