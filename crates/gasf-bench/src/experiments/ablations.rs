//! Ablations of the design choices the dissertation argues for.
//!
//! * `abl_regions` — why region-based segmentation matters: solving the
//!   hitting set per region keeps decision latency bounded and the solver
//!   cheap, at zero bandwidth cost (Theorem 2).
//! * `abl_predictor` — the run-time predictor's overestimation constant
//!   (§3.3): conservativeness vs. bandwidth.
//! * `abl_stateful` — stateful vs. stateless candidate sets under the
//!   per-candidate-set algorithm (§2.3.3's compression-ratio discussion).

use super::Params;
use crate::report::{f3, f4, Table};
use crate::runner::{output_ratio, run_variant, Variant};
use crate::specs::dc_tmpr;
use gasf_core::candidate::{CloseCause, FilterId};
use gasf_core::cuts::TimeConstraint;
use gasf_core::engine::{Algorithm, GroupEngine, OutputStrategy};
use gasf_core::filter::{build_filter, GroupFilter};
use gasf_core::hitting_set::greedy_hitting_set;
use gasf_core::quality::{Dependency, FilterKind, FilterSpec};
use gasf_core::region::RegionTracker;
use gasf_core::time::Micros;
use std::time::Instant;

/// `abl_regions` — region-segmented greedy vs. one whole-stream solve.
pub fn abl_regions(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let group = dc_tmpr(&trace);

    // Collect every closed candidate set by driving the filters directly.
    let mut filters: Vec<Box<dyn GroupFilter>> = group
        .specs
        .iter()
        .enumerate()
        .map(|(i, s)| build_filter(s, FilterId::from_index(i), trace.schema()).expect("valid"))
        .collect();
    let mut sets = Vec::new();
    for t in trace.tuples() {
        for f in &mut filters {
            sets.extend(f.process(t).expect("no missing values").closed);
        }
    }
    for f in &mut filters {
        sets.extend(f.force_close(CloseCause::EndOfStream).closed);
    }

    // Whole-stream solve: wait for everything, one big instance.
    let t0 = Instant::now();
    let whole = greedy_hitting_set(&sets);
    let whole_cpu = t0.elapsed();

    // Region-based solve.
    let mut tracker = RegionTracker::new();
    let total_sets = sets.len();
    for s in sets {
        tracker.add(s);
    }
    let regions = tracker.drain_all();
    let t1 = Instant::now();
    let mut region_outputs = 0usize;
    let mut max_span = Micros::ZERO;
    for r in &regions {
        region_outputs += greedy_hitting_set(r.sets()).len();
        max_span = max_span.max(r.cover().span());
    }
    let region_cpu = t1.elapsed();
    let stream_span = trace
        .tuples()
        .last()
        .map(|t| t.timestamp())
        .unwrap_or(Micros::ZERO);

    let mut t = Table::new(
        "abl_regions",
        "ablation: region-segmented greedy vs whole-stream greedy",
        ["mode", "outputs", "solver cpu (us)", "worst decision wait"],
    );
    t.row([
        "whole stream".to_string(),
        whole.len().to_string(),
        f3(whole_cpu.as_secs_f64() * 1e6),
        stream_span.to_string(),
    ]);
    t.row([
        format!("per region ({} regions, {total_sets} sets)", regions.len()),
        region_outputs.to_string(),
        f3(region_cpu.as_secs_f64() * 1e6),
        max_span.to_string(),
    ]);
    t.note("Theorem 2: identical output counts; segmentation bounds the wait by the region span instead of the stream length");
    vec![t]
}

/// `abl_predictor` — cut conservativeness: overestimation constant sweep.
pub fn abl_predictor(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let group = dc_tmpr(&trace);
    let deadline = Micros::from_millis(40);
    let mut t = Table::new(
        "abl_predictor",
        "ablation: run-time predictor overestimation (deadline 40 ms)",
        [
            "overestimate (us)",
            "deadline violations",
            "O/I ratio",
            "% regions cut",
        ],
    );
    for overestimate in [0.0, 10_000.0, 20_000.0] {
        let mut engine = GroupEngine::builder(trace.schema().clone())
            .algorithm(Algorithm::RegionGreedy)
            .output_strategy(OutputStrategy::Earliest)
            .time_constraint(TimeConstraint::max_delay(deadline))
            .predictor(10, overestimate)
            .filters(group.specs.clone())
            .build()
            .expect("valid");
        engine.run(trace.tuples().to_vec()).expect("run");
        let m = engine.metrics();
        let violations = m
            .latencies_us
            .iter()
            .filter(|&&l| l > deadline.as_micros())
            .count() as f64
            / m.latencies_us.len().max(1) as f64;
        t.row([
            format!("{overestimate:.0}"),
            format!("{:.1}%", violations * 100.0),
            f4(m.oi_ratio()),
            format!("{:.1}%", m.cut_fraction() * 100.0),
        ]);
    }
    t.note(
        "more overestimation cuts earlier: fewer deadline violations, slightly worse O/I (§3.3)",
    );
    vec![t]
}

/// `abl_stateful` — stateful vs. stateless candidate sets under PS.
pub fn abl_stateful(params: &Params) -> Vec<Table> {
    let trace = params.namos(0);
    let group = dc_tmpr(&trace);
    let stateful_specs: Vec<FilterSpec> = group
        .specs
        .iter()
        .map(|s| {
            let mut s = s.clone();
            if let FilterKind::Delta { dependency, .. } = &mut s.kind {
                *dependency = Dependency::Stateful;
            }
            s
        })
        .collect();

    let mut t = Table::new(
        "abl_stateful",
        "ablation: stateless vs stateful candidate sets (PS algorithm)",
        ["dependency", "O/I", "output ratio vs SI", "sets per filter"],
    );
    let si = run_variant(&trace, &group.specs, Variant::Si, Micros::MAX);
    for (name, specs) in [("stateless", &group.specs), ("stateful", &stateful_specs)] {
        let out = crate::runner::run_engine(
            &trace,
            specs,
            Algorithm::PerCandidateSet,
            OutputStrategy::Earliest,
            None,
        );
        let sets: Vec<String> = out
            .metrics
            .per_filter
            .iter()
            .map(|f| f.sets_closed.to_string())
            .collect();
        t.row([
            name.to_string(),
            f4(out.metrics.oi_ratio()),
            f4(output_ratio(&out, &si)),
            sets.join("/"),
        ]);
    }
    t.note("§2.3.3: stateful sets re-anchor on the chosen output, so the compression ratio may drift from the stateless one");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 1_000,
            reps: 1,
        }
    }

    #[test]
    fn region_ablation_outputs_match() {
        let t = &abl_regions(&p())[0];
        let whole: u64 = t.rows[0][1].parse().unwrap();
        let per_region: u64 = t.rows[1][1].parse().unwrap();
        assert_eq!(whole, per_region, "Theorem 2 violated");
    }

    #[test]
    fn predictor_overestimation_cuts_more() {
        let t = &abl_predictor(&p())[0];
        let viol: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].trim_end_matches('%').parse().unwrap())
            .collect();
        assert!(
            viol.last().unwrap() <= viol.first().unwrap(),
            "conservative cuts must not increase violations: {viol:?}"
        );
        let cut_pct: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].trim_end_matches('%').parse().unwrap())
            .collect();
        assert!(
            cut_pct.last().unwrap() >= cut_pct.first().unwrap(),
            "conservative predictions must cut at least as often: {cut_pct:?}"
        );
    }

    #[test]
    fn stateful_ablation_rows_valid() {
        let t = &abl_stateful(&p())[0];
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let oi: f64 = row[1].parse().unwrap();
            assert!(oi > 0.0 && oi < 1.0);
        }
    }
}
