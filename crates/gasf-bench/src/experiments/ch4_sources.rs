//! Source-data experiments (Figs. 4.19–4.24): cow orientation, volcano
//! seismic readings and fire HRR(Q).

use super::Params;
use crate::report::{f3, f4, Table};
use crate::runner::{cpu_per_tuple_us, run_variant, Variant};
use crate::specs::source_group;
use gasf_core::time::Micros;
use gasf_sources::{SourceKind, Trace};

const CUT: Micros = Micros::from_millis(125);

fn sources(params: &Params) -> Vec<(&'static str, SourceKind, Trace)> {
    vec![
        (
            "Cow's orientation",
            SourceKind::Cow,
            SourceKind::Cow.generate(params.tuples, 1),
        ),
        (
            "Seismic reading",
            SourceKind::Volcano,
            SourceKind::Volcano.generate(params.tuples, 1),
        ),
        (
            "HRR(Q)",
            SourceKind::Fire,
            SourceKind::Fire.generate(params.tuples, 1),
        ),
    ]
}

/// Fig. 4.19 — filter specifications for the three extra data sources.
pub fn fig4_19(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_19",
        "Fig 4.19: filter specifications for multiple data sources",
        ["group", "filter"],
    );
    for (i, (name, kind, trace)) in sources(params).into_iter().enumerate() {
        let g = source_group(&trace, kind.primary_attr(), name, 190 + i as u64);
        for s in &g.specs {
            t.row([g.name.clone(), s.to_string()]);
        }
    }
    vec![t]
}

/// Fig. 4.20 — O/I ratios of filtering with different data sources.
pub fn fig4_20(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_20",
        "Fig 4.20: O/I ratios of filtering with different data sources",
        ["source", "RG", "RG+C", "PS", "PS+C", "SI", "RG/SI"],
    );
    for (i, (name, kind, trace)) in sources(params).into_iter().enumerate() {
        let g = source_group(&trace, kind.primary_attr(), name, 190 + i as u64);
        let mut cells = vec![name.to_string()];
        let mut rg = f64::NAN;
        let mut si = f64::NAN;
        for v in Variant::ALL {
            let out = run_variant(&trace, &g.specs, v, CUT);
            let oi = out.metrics.oi_ratio();
            if v == Variant::Rg {
                rg = oi;
            }
            if v == Variant::Si {
                si = oi;
            }
            cells.push(f4(oi));
        }
        cells.push(f3(rg / si));
        t.row(cells);
    }
    t.note("paper: GA reduced bandwidth to 83% (cow), 74% (seismic), 60% (fire) of SI");
    vec![t]
}

/// Figs. 4.21–4.23 — the shapes of the three sources (sparkline + stats).
pub fn fig4_21(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_21",
        "Figs 4.21-4.23: source update patterns",
        ["source", "min", "max", "srcStat", "shape (60 buckets)"],
    );
    for (name, kind, trace) in sources(params) {
        let stats = trace.stats(kind.primary_attr()).expect("attr");
        let series = trace.series_of(kind.primary_attr()).expect("attr");
        t.row([
            name.to_string(),
            format!("{:.4}", stats.min),
            format!("{:.4}", stats.max),
            format!("{:.4}", stats.mean_abs_delta),
            sparkline(&series.iter().map(|(_, v)| *v).collect::<Vec<_>>(), 60),
        ]);
    }
    t.note("cow: clustered brief changes; seismic: smooth oscillation; HRR: smooth growth/decay");
    vec![t]
}

/// Renders a series into `buckets` characters of block-height art.
pub fn sparkline(values: &[f64], buckets: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || buckets == 0 {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    (0..buckets)
        .map(|b| {
            let lo = b * values.len() / buckets;
            let hi = ((b + 1) * values.len() / buckets).max(lo + 1);
            let mean = values[lo..hi.min(values.len())].iter().sum::<f64>() / (hi - lo) as f64;
            let idx = (((mean - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Fig. 4.24 — CPU cost of filtering with different data sources.
pub fn fig4_24(params: &Params) -> Vec<Table> {
    let mut t = Table::new(
        "fig4_24",
        "Fig 4.24: CPU cost of filtering with different data sources (us/tuple)",
        ["source", "RG", "RG+C", "PS", "PS+C", "SI"],
    );
    for (i, (name, kind, trace)) in sources(params).into_iter().enumerate() {
        let g = source_group(&trace, kind.primary_attr(), name, 190 + i as u64);
        let mut cells = vec![name.to_string()];
        for v in Variant::ALL {
            let out = run_variant(&trace, &g.specs, v, CUT);
            cells.push(f3(cpu_per_tuple_us(&out)));
        }
        t.row(cells);
    }
    t.note("paper: group-aware adds <50% CPU over SI for these sources");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params {
            tuples: 1_500,
            reps: 1,
        }
    }

    #[test]
    fn ga_saves_bandwidth_on_every_source() {
        let t = &fig4_20(&p())[0];
        for row in &t.rows {
            let ratio: f64 = row[6].parse().unwrap();
            assert!(ratio <= 1.0 + 1e-9, "{}: RG/SI {ratio}", row[0]);
        }
    }

    #[test]
    fn smooth_fire_beats_bursty_cow() {
        // The paper's headline: smoother sources (fire) benefit more from
        // group-awareness than bursty ones (cow).
        let t = &fig4_20(&p())[0];
        let ratio = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0].contains(name)).unwrap()[6]
                .parse()
                .unwrap()
        };
        assert!(
            ratio("HRR") <= ratio("Cow") + 0.15,
            "fire {} vs cow {}",
            ratio("HRR"),
            ratio("Cow")
        );
    }

    #[test]
    fn sparkline_renders() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(sparkline(&[], 10).is_empty());
        // flat series renders without panicking
        let flat = sparkline(&[5.0; 100], 10);
        assert_eq!(flat.chars().count(), 10);
    }

    #[test]
    fn specs_listed_for_each_source() {
        let t = &fig4_19(&p())[0];
        assert_eq!(t.rows.len(), 9);
    }
}
