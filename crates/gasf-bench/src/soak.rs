//! The million-subscriber soak harness (ROADMAP item 5).
//!
//! The paper's north-star is "heavy traffic from millions of users"
//! served cheaply because applications state quality slack the system
//! may exploit under pressure. This module proves that end-to-end
//! instead of inferring it from micro-benches: one [`run_soak`] drives
//! the **sharded + distributed path** — a [`Middleware`] over a 1024-node
//! grid overlay with worker shards, a bounded ingress
//! ([`CreditGate`](gasf_solar::CreditGate)) and a quality-aware
//! [`Shedder`](gasf_solar::Shedder) — under ≥10⁶ synthetic
//! subscriptions, subscription churn and an injected forwarder fault,
//! and reports:
//!
//! * **p50/p99 delivery latency** from the per-source
//!   [`LatencyHistogram`](gasf_core::metrics::LatencyHistogram)
//!   (fixed-footprint, so a million subscribers cost 64 counters, not
//!   gigabytes of samples), and
//! * **bytes saved vs. naive multicast** — the overlay's measured wire
//!   bytes against the no-sharing baseline that unicasts *every* input
//!   tuple to *every* subscriber along underlay shortest paths.
//!
//! The stream runs through three deterministic pressure phases:
//!
//! 1. **calm** — credits replenished to capacity before every batch;
//!    the shedder sees only full admissions and never moves;
//! 2. **pressure** — a starvation schedule grants only a trickle, so
//!    every batch needs several partial (`Throttled`) pushes; sustained
//!    throttling climbs the degradation ladder and retunes every
//!    subscription that declared [`ShedHeadroom`] — inside its slack,
//!    counted, reversible;
//! 3. **recovery** — the tail of the trace arrives through the
//!    *connector seam* ([`ArrivalReplay`] driven by
//!    [`Middleware::ingest`] under [`GrantPolicy::Adaptive`]); calm
//!    admissions restore every degraded subscription to rung 0.
//!
//! `GASF_BENCH_SMOKE=1` selects the 10⁴-subscription smoke sizing used
//! by CI ([`SoakConfig::from_env`]); the full [`SoakConfig::million`]
//! numbers are recorded in `BENCH_baseline.json` (single-vCPU caveat —
//! wall-clock there is one core doing the work of a cluster).

use gasf_core::batch::TupleBatch;
use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::quality::FilterSpec;
use gasf_core::schema::Schema;
use gasf_core::shed::ShedHeadroom;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{
    GrantPolicy, IngestOptions, Middleware, MiddlewareConfig, ShedConfig, SolarError, SourceId,
    SubscriptionHandle,
};
use gasf_sources::{ArrivalReplay, NamosBuoy, Trace};
use std::sync::Arc;

/// Sizing and pressure schedule for one soak run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakConfig {
    /// Synthetic subscriptions installed before deploy.
    pub subscriptions: usize,
    /// Input tuples streamed through the source.
    pub tuples: usize,
    /// Overlay grid dimensions (`w × h` nodes; node 0 hosts the source).
    pub grid: (usize, usize),
    /// Worker shards per filter group (the sharded path).
    pub parallelism: usize,
    /// Distinct filter-spec combos the subscriptions cycle through.
    pub spec_combos: usize,
    /// Ingress credit-gate capacity (rows).
    pub ingress_capacity: u64,
    /// Rows per pushed batch.
    pub batch_rows: usize,
    /// Credits granted per throttled retry during the pressure phase.
    pub pressure_credits: u64,
    /// Batches between churn ticks (0 disables churn).
    pub churn_every: usize,
    /// Whether to fail (and later recover) a forwarder node mid-stream.
    pub inject_fault: bool,
    /// Trace generator seed.
    pub seed: u64,
}

impl SoakConfig {
    /// The full run: one million subscribers on a 32×32 grid.
    pub fn million() -> Self {
        SoakConfig {
            subscriptions: 1_000_000,
            tuples: 192,
            grid: (32, 32),
            parallelism: 2,
            spec_combos: 64,
            ingress_capacity: 16,
            batch_rows: 8,
            pressure_credits: 1,
            churn_every: 6,
            inject_fault: true,
            seed: 1,
        }
    }

    /// CI smoke sizing: 10⁴ subscribers, same schedule shape.
    pub fn smoke() -> Self {
        SoakConfig {
            subscriptions: 10_000,
            grid: (16, 16),
            ..Self::million()
        }
    }

    /// [`smoke`](Self::smoke) under `GASF_BENCH_SMOKE=1`, else
    /// [`million`](Self::million). `GASF_SOAK_SUBS=<n>` overrides the
    /// subscription count on either base — the knob for scaling probes
    /// between the two canonical sizes.
    pub fn from_env() -> Self {
        let mut cfg = if std::env::var_os("GASF_BENCH_SMOKE").is_some() {
            Self::smoke()
        } else {
            Self::million()
        };
        if let Some(n) = std::env::var("GASF_SOAK_SUBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.subscriptions = n.max(1);
        }
        cfg
    }

    /// The shedder policy the run deploys with: quick to climb under the
    /// starvation schedule, a few calm admissions to descend one rung.
    /// The trigger must sit below the throttles one starved batch
    /// produces (`batch_rows` at one credit per retry), because the
    /// final retry of every batch admits fully and resets the streak.
    pub fn shed_config(&self) -> ShedConfig {
        ShedConfig {
            trigger: 4,
            recover: 4,
            max_rung: 2,
        }
    }

    fn nodes(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Overlay nodes reserved as pure forwarders (no subscribers), so a
    /// fault can hit a load-bearing interior node without killing a
    /// subscriber: the two underlay neighbours of the source corner.
    fn reserved(&self) -> [u32; 2] {
        [1, self.grid.0 as u32]
    }

    fn spec(&self, combo: usize, scale: f64) -> FilterSpec {
        let delta = scale * (1.5 + 0.25 * (combo % 8) as f64);
        let slack = delta * (0.15 + 0.08 * ((combo / 8) % 4) as f64);
        let spec = FilterSpec::delta("tmpr4", delta, slack);
        // Half the roster declares shedding headroom; the other half is
        // a control population the shedder must never touch.
        if combo.is_multiple_of(2) {
            spec.with_shed_headroom(ShedHeadroom::rungs(1 + (combo % 3) as u8))
        } else {
            spec
        }
    }

    /// The subscriber node for subscription `i`: round-robin over every
    /// non-source, non-reserved node.
    fn node_for(&self, i: usize) -> NodeId {
        let reserved = self.reserved();
        let usable: u32 = self.nodes() as u32 - 1 - reserved.len() as u32;
        let mut n = 1 + (i as u32 % usable);
        for r in reserved {
            if n >= r {
                n += 1;
            }
        }
        NodeId(n)
    }
}

/// Everything one soak run measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakOutcome {
    /// Subscriptions installed before deploy (excludes churn joiners).
    pub subscriptions: usize,
    /// Input tuples streamed.
    pub input_tuples: u64,
    /// Per-subscription deliveries recorded (histogram samples).
    pub deliveries: u64,
    /// Median end-to-end delivery latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile end-to-end delivery latency, microseconds.
    pub p99_us: u64,
    /// Maximum end-to-end delivery latency, microseconds.
    pub max_us: u64,
    /// Bytes that actually crossed overlay links (shared trees).
    pub actual_bytes: u64,
    /// Bytes the naive baseline would spend: every input tuple unicast
    /// from the source to every subscriber along underlay shortest
    /// paths, headers included, no filtering, no tree sharing.
    pub naive_bytes: u64,
    /// Throttled admissions observed by the ingress gate.
    pub throttled: u64,
    /// Tuples dropped after the degradation ladder was exhausted.
    pub shed_dropped: u64,
    /// Per-subscription degradations applied under pressure.
    pub degrade_ops: u64,
    /// Per-subscription restorations applied after pressure cleared.
    pub restore_ops: u64,
    /// Shedder rung when the stream finished (0 = fully restored).
    pub final_rung: u8,
    /// Churn operations performed (each = join + retune + leave).
    pub churn_ops: u64,
    /// Faults injected (forwarder node failed and later recovered).
    pub faults: u64,
    /// Scribe tree repairs (re-grafts + re-roots) the faults triggered.
    pub repairs: u64,
}

impl SoakOutcome {
    /// Wire bytes the group-aware path saved over naive multicast.
    pub fn bytes_saved(&self) -> u64 {
        self.naive_bytes.saturating_sub(self.actual_bytes)
    }

    /// Saved fraction of the naive baseline, in `[0, 1]`.
    pub fn savings_ratio(&self) -> f64 {
        if self.naive_bytes == 0 {
            return 0.0;
        }
        self.bytes_saved() as f64 / self.naive_bytes as f64
    }

    /// Panics unless the run shows every property the soak exists to
    /// prove — the CI smoke gate.
    pub fn assert_sane(&self) {
        assert!(self.deliveries > 0, "soak delivered nothing");
        assert!(self.p50_us > 0, "p50 latency missing");
        assert!(
            self.p99_us >= self.p50_us,
            "p99 {} < p50 {}",
            self.p99_us,
            self.p50_us
        );
        assert!(self.max_us >= self.p99_us, "max below p99");
        assert!(
            self.actual_bytes > 0 && self.naive_bytes > self.actual_bytes,
            "no bytes saved: naive {} vs actual {}",
            self.naive_bytes,
            self.actual_bytes
        );
        assert!(self.throttled > 0, "pressure phase never throttled");
        assert!(
            self.degrade_ops > 0,
            "pressure never degraded a headroom subscription"
        );
        // Exact degrade/restore symmetry only holds on a frozen roster;
        // churn adds/retunes/removes headroom subscriptions mid-ladder,
        // so the counts may differ — but calm must restore *something*
        // and must walk the source all the way back to rung 0.
        assert!(self.restore_ops > 0, "calm never restored a subscription");
        assert_eq!(self.final_rung, 0, "shedder not restored after calm");
    }

    /// The outcome as one flat JSON object (hand-rolled — the workspace
    /// serde is a shim), ready for `BENCH_baseline.json`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"subscriptions\": {}, \"input_tuples\": {}, \"deliveries\": {}, ",
                "\"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, ",
                "\"actual_bytes\": {}, \"naive_bytes\": {}, \"bytes_saved\": {}, ",
                "\"savings_ratio\": {:.4}, \"throttled\": {}, \"shed_dropped\": {}, ",
                "\"degrade_ops\": {}, \"restore_ops\": {}, \"final_rung\": {}, ",
                "\"churn_ops\": {}, \"faults\": {}, \"repairs\": {}}}"
            ),
            self.subscriptions,
            self.input_tuples,
            self.deliveries,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.actual_bytes,
            self.naive_bytes,
            self.bytes_saved(),
            self.savings_ratio(),
            self.throttled,
            self.shed_dropped,
            self.degrade_ops,
            self.restore_ops,
            self.final_rung,
            self.churn_ops,
            self.faults,
            self.repairs,
        )
    }
}

/// Wire bytes of the no-sharing baseline: every input tuple unicast to
/// every subscriber along underlay shortest paths. Charged exactly like
/// [`Overlay`] unicasts — `(payload + header) × hops` per message —
/// but computed analytically (hop counts per node × subscriber counts),
/// since actually sending `tuples × subscriptions` messages is the
/// point of *not* having multicast.
fn naive_multicast_bytes(
    topology: &Topology,
    src: NodeId,
    sub_nodes: &[u64],
    tuples: u64,
    msg_bytes: u64,
) -> u64 {
    let mut hop_weighted = 0u64;
    for (idx, &count) in sub_nodes.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let hops = topology
            .path(src, NodeId(idx as u32))
            .map(|p| p.len() as u64 - 1)
            .unwrap_or(0);
        hop_weighted += hops * count;
    }
    tuples * msg_bytes * hop_weighted
}

struct SoakRig {
    mw: Middleware,
    src: SourceId,
    schema: Schema,
    handles: Vec<SubscriptionHandle>,
    scale: f64,
    naive_bytes: u64,
}

fn build_rig(cfg: &SoakConfig, trace: &Trace) -> Result<SoakRig, SolarError> {
    let (w, h) = cfg.grid;
    let topology = Topology::grid(w, h).build();
    let overlay = Overlay::new(topology);
    let header = overlay.config().header_bytes as u64;
    let mut mw = Middleware::with_config(
        overlay,
        MiddlewareConfig {
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            parallelism: cfg.parallelism,
            ingress_capacity: Some(cfg.ingress_capacity),
            shedding: Some(cfg.shed_config()),
            ..MiddlewareConfig::default()
        },
    );
    let schema = trace.schema().clone();
    let src = mw.register_source("soak", NodeId(0), schema.clone())?;
    let scale = trace
        .stats("tmpr4")
        .expect("NAMOS trace has tmpr4")
        .mean_abs_delta;

    let mut handles = Vec::with_capacity(cfg.subscriptions);
    let mut sub_nodes = vec![0u64; cfg.nodes()];
    for i in 0..cfg.subscriptions {
        let node = cfg.node_for(i);
        let spec = cfg.spec(i % cfg.spec_combos.max(1), scale);
        handles.push(mw.subscribe(format!("app{i}"), node, src, spec)?);
        sub_nodes[node.index()] += 1;
    }
    mw.deploy()?;

    let msg_bytes = trace.tuples()[0].wire_size() as u64 + header;
    let naive_bytes = naive_multicast_bytes(
        mw.overlay().topology(),
        NodeId(0),
        &sub_nodes,
        trace.tuples().len() as u64,
        msg_bytes,
    );
    Ok(SoakRig {
        mw,
        src,
        schema,
        handles,
        scale,
        naive_bytes,
    })
}

/// Runs one soak to completion.
///
/// # Panics
/// Panics on middleware errors — the soak configuration is static and a
/// failure is a harness bug, exactly what the soak exists to surface.
pub fn run_soak(cfg: &SoakConfig) -> SoakOutcome {
    let started = std::time::Instant::now();
    let progress = |msg: &str| {
        eprintln!("soak: [{:7.1}s] {msg}", started.elapsed().as_secs_f64());
    };
    let trace = NamosBuoy::new()
        .tuples(cfg.tuples)
        .seed(cfg.seed)
        .generate();
    let mut rig = build_rig(cfg, &trace).expect("soak rig must build");
    progress("rig deployed");
    let batches: Vec<TupleBatch> = trace.batches(cfg.batch_rows);
    let total = batches.len();
    let pressure_from = total / 3;
    let recover_from = 2 * total / 3;
    let fault_at = pressure_from + (recover_from - pressure_from) / 2;
    // The victim is a reserved forwarder (no subscribers live there) that
    // neighbours the source corner, so it is load-bearing by construction.
    let victim = NodeId(cfg.reserved()[0]);

    let mut churn_ops = 0u64;
    let mut faults = 0u64;
    let mut joiner: Option<SubscriptionHandle> = None;
    let mut recover_tail: Vec<gasf_core::tuple::Tuple> = Vec::new();

    for (b, batch) in batches.into_iter().enumerate() {
        if b >= recover_from {
            // Phase 3 streams through the connector seam below.
            recover_tail.extend(batch.materialize());
            continue;
        }
        if b % 4 == 0 {
            progress(&format!(
                "batch {b}/{total} ({})",
                if b < pressure_from {
                    "calm"
                } else {
                    "pressure"
                }
            ));
        }
        let calm = b < pressure_from;
        if calm {
            rig.mw
                .grant_credits(rig.src, cfg.ingress_capacity)
                .expect("grant");
        }
        let arc = Arc::new(batch);
        let mut row = 0usize;
        while row < arc.rows() {
            let (advanced, outcome) = rig
                .mw
                .try_push_columnar(rig.src, &arc, row)
                .expect("soak push");
            row += advanced;
            if !outcome.is_accepted() {
                // The pressure schedule: a trickle of credits, so the
                // batch finishes only through repeated partial pushes
                // and the shedder sees a sustained throttle streak.
                rig.mw
                    .grant_credits(rig.src, cfg.pressure_credits.max(1))
                    .expect("grant");
            }
        }

        if cfg.inject_fault && b == fault_at && faults == 0 {
            rig.mw.fail_node(victim).expect("victim is a forwarder");
            faults += 1;
        }

        if cfg.churn_every > 0 && b > 0 && b % cfg.churn_every == 0 {
            // One churn tick: the previous joiner leaves, a new app
            // joins, and one standing subscription retunes — all live,
            // mid-stream, at the engines' next safe point.
            if let Some(h) = joiner.take() {
                rig.mw.unsubscribe(h).expect("joiner leaves");
            }
            let i = churn_ops as usize;
            joiner = Some(
                rig.mw
                    .subscribe(
                        format!("churn{i}"),
                        cfg.node_for(i * 7919),
                        rig.src,
                        cfg.spec(i % cfg.spec_combos.max(1), rig.scale),
                    )
                    .expect("joiner subscribes"),
            );
            let standing = rig.handles[(i * 104729) % rig.handles.len()];
            rig.mw
                .resubscribe(
                    standing,
                    cfg.spec((i + 1) % cfg.spec_combos.max(1), rig.scale),
                )
                .expect("standing retunes");
            churn_ops += 1;
        }
    }

    if faults > 0 {
        rig.mw.recover_node(victim).expect("victim revives");
    }

    // Phase 3: the tail arrives through the connector seam — a replay
    // connector driven by the ingest loop under adaptive credit grants.
    // Calm, full admissions walk the shedder back down to rung 0.
    progress("recovery tail (connector ingest + finish)");
    rig.mw
        .grant_credits(rig.src, cfg.ingress_capacity)
        .expect("grant");
    let mut tail = ArrivalReplay::new(rig.schema.clone(), recover_tail);
    rig.mw
        .ingest(
            rig.src,
            &mut tail,
            IngestOptions {
                max_rows: cfg.batch_rows,
                grant: GrantPolicy::Adaptive,
                finish: true,
            },
        )
        .expect("soak ingest tail");

    progress("stream finished, collecting report");
    let report = rig.mw.report(rig.src).expect("soak report");
    let hist = rig.mw.latency_histogram(rig.src).expect("soak histogram");
    let flow = rig.mw.flow_monitor(rig.src).expect("soak flow");
    SoakOutcome {
        subscriptions: cfg.subscriptions,
        input_tuples: cfg.tuples as u64,
        deliveries: hist.count(),
        p50_us: hist.percentile(50.0).as_micros(),
        p99_us: hist.percentile(99.0).as_micros(),
        max_us: hist.max().as_micros(),
        actual_bytes: report.network_bytes,
        naive_bytes: rig.naive_bytes,
        throttled: flow.throttled(),
        shed_dropped: flow.shed_dropped(),
        degrade_ops: flow.degrade_ops(),
        restore_ops: flow.restore_ops(),
        final_rung: rig.mw.shed_rung(rig.src).expect("soak rung"),
        churn_ops,
        faults,
        repairs: rig.mw.overlay().repairs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            subscriptions: 400,
            grid: (8, 8),
            ..SoakConfig::million()
        }
    }

    #[test]
    fn tiny_soak_is_sane() {
        let out = run_soak(&tiny());
        out.assert_sane();
        assert_eq!(out.faults, 1);
        assert!(out.churn_ops > 0);
        assert_eq!(out.subscriptions, 400);
    }

    #[test]
    fn fault_free_soak_reports_no_repairs_from_faults() {
        let out = run_soak(&SoakConfig {
            inject_fault: false,
            ..tiny()
        });
        out.assert_sane();
        assert_eq!(out.faults, 0);
    }

    #[test]
    fn outcome_json_carries_every_field() {
        let out = run_soak(&SoakConfig {
            subscriptions: 120,
            tuples: 96,
            grid: (4, 4),
            churn_every: 0,
            inject_fault: false,
            ..SoakConfig::million()
        });
        let json = out.to_json();
        for key in [
            "subscriptions",
            "p50_us",
            "p99_us",
            "bytes_saved",
            "savings_ratio",
            "degrade_ops",
            "restore_ops",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn node_for_skips_source_and_reserved_forwarders() {
        let cfg = tiny();
        let reserved = [1u32, cfg.grid.0 as u32];
        for i in 0..500 {
            let n = cfg.node_for(i);
            assert_ne!(n.index(), 0, "source node got a subscriber");
            assert!(
                !reserved.contains(&(n.index() as u32)),
                "reserved forwarder {n:?} got a subscriber"
            );
            assert!(n.index() < cfg.nodes());
        }
    }
}
