//! The transport seam: one trait, many ways to move an emission.
//!
//! [`Overlay::multicast_emission`] is the single funnel through which the
//! middleware pushes filtered tuples into the network. [`Transport`]
//! abstracts that funnel so the *same* middleware code can drain its
//! emissions into
//!
//! * the in-process analytic overlay (this crate — [`Overlay`] implements
//!   `Transport` by delegating to `multicast_emission`, byte-for-byte
//!   identical to calling it directly), or
//! * a real wire (the `gasf-wire` crate's length-prefixed TCP transport,
//!   which frames each emission and multiplexes per-peer connections), or
//! * a recording tee that wraps either of the above and hashes the
//!   canonical byte stream each recipient node observes.
//!
//! The trait is object safe (`&mut dyn Transport`) because the middleware
//! stores it behind a reference in its per-source sink; that is also why
//! `node_of` is a `&mut dyn FnMut` rather than a generic parameter.
//!
//! ## Flush and backpressure
//!
//! [`Transport::flush`] is the explicit drain point: a transport may
//! buffer frames (the TCP transport batches small frames per peer
//! connection) and must push everything to the underlying medium when
//! flushed. Backpressure is the transport's responsibility — a bounded
//! implementation blocks inside [`Transport::send_emission`] or `flush`
//! until the medium accepts the bytes, and reports a hard failure as
//! [`NetError::Transport`]. The analytic overlay transmits synchronously,
//! so its `flush` is a no-op.

use crate::multicast::{Delivery, GroupId, NetError, Overlay};
use crate::topology::NodeId;
use gasf_core::candidate::FilterId;
use gasf_core::engine::Emission;
use std::fmt;

/// Cumulative traffic over one transport link, as reported by
/// [`Transport::link_loads`]. What a "link" is depends on the transport:
/// an undirected underlay edge for the analytic overlay, a per-peer TCP
/// connection for the wire transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkLoad {
    /// Human-readable link name (e.g. `"n0-n1"` for an overlay edge,
    /// `"p0->p2"` for a peer connection).
    pub link: String,
    /// Bytes that crossed the link since construction or the last
    /// counter reset.
    pub bytes: u64,
}

impl fmt::Display for LinkLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} B", self.link, self.bytes)
    }
}

/// A way to move one emission from a source node to the overlay nodes
/// hosting its recipient filters.
///
/// Implementations must be deterministic given the same call sequence:
/// the distributed-equivalence contract (`tests/tests/
/// distributed_equivalence.rs`) compares per-node byte streams across
/// transports, which only works when neither side reorders or drops
/// emissions.
pub trait Transport: fmt::Debug {
    /// Sends one emission to the nodes hosting its recipient filters.
    ///
    /// `node_of` maps each recipient [`FilterId`] to the overlay node its
    /// subscriber application lives on; implementations collapse
    /// duplicate nodes before sending. The returned [`Delivery`] carries
    /// the transport's own accounting — the analytic overlay reports
    /// modelled per-recipient latencies, while a real wire transport
    /// reports actual bytes written and leaves latencies to the
    /// receiving process.
    ///
    /// # Errors
    /// Transport-specific; the analytic overlay returns its usual
    /// membership/topology errors, a wire transport maps I/O failures to
    /// [`NetError::Transport`].
    fn send_emission(
        &mut self,
        group: GroupId,
        src: NodeId,
        emission: &Emission,
        node_of: &mut dyn FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError>;

    /// Drains any buffered frames to the underlying medium (see the
    /// module docs on flush/backpressure semantics).
    ///
    /// # Errors
    /// Returns [`NetError::Transport`] when the medium rejects the
    /// buffered bytes.
    fn flush(&mut self) -> Result<(), NetError>;

    /// Total bytes this transport has put on its links.
    fn total_bytes(&self) -> u64;

    /// Number of send operations so far.
    fn messages(&self) -> u64;

    /// Per-link byte counters, sorted by link name — the bandwidth
    /// report `gasfctl inspect` prints.
    fn link_loads(&self) -> Vec<LinkLoad>;
}

/// The analytic overlay *is* a transport: sends delegate to
/// [`Overlay::multicast_emission`] unchanged, so routing a middleware
/// through `&mut dyn Transport` instead of `&mut Overlay` produces
/// byte-for-byte identical deliveries and accounting.
impl Transport for Overlay {
    fn send_emission(
        &mut self,
        group: GroupId,
        src: NodeId,
        emission: &Emission,
        node_of: &mut dyn FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError> {
        self.multicast_emission(group, src, emission, node_of)
    }

    fn flush(&mut self) -> Result<(), NetError> {
        // Synchronous analytic sends: nothing is ever buffered.
        Ok(())
    }

    fn total_bytes(&self) -> u64 {
        Overlay::total_bytes(self)
    }

    fn messages(&self) -> u64 {
        Overlay::messages(self)
    }

    fn link_loads(&self) -> Vec<LinkLoad> {
        Overlay::link_loads(self)
            .into_iter()
            .map(|(a, b, bytes)| LinkLoad {
                link: format!("{a}-{b}"),
                bytes,
            })
            .collect()
    }
}

/// A transport that accepts every send and moves nothing: the seam's
/// `/dev/null`. Deliveries report zero bytes and zero latency for each
/// (deduplicated) recipient node. Useful as the inner transport of a
/// recording tee when only the *stream content* matters — e.g. computing
/// reference digests for a distributed-equivalence check without
/// standing up an overlay — and as a baseline in transport benchmarks.
#[derive(Debug, Default, Clone)]
pub struct NullTransport {
    messages: u64,
    scratch_nodes: Vec<NodeId>,
}

impl NullTransport {
    /// Creates a fresh null transport.
    pub fn new() -> Self {
        NullTransport::default()
    }
}

impl Transport for NullTransport {
    fn send_emission(
        &mut self,
        _group: GroupId,
        _src: NodeId,
        emission: &Emission,
        node_of: &mut dyn FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError> {
        self.scratch_nodes.clear();
        self.scratch_nodes
            .extend(emission.recipients.iter().map(&mut *node_of));
        self.scratch_nodes.sort_unstable();
        self.scratch_nodes.dedup();
        let latencies = self
            .scratch_nodes
            .iter()
            .map(|&n| (n, gasf_core::time::Micros::ZERO))
            .collect();
        self.messages += 1;
        Ok(Delivery {
            latencies,
            bytes_on_wire: 0,
            overlay_hops: 0,
            repair_bytes: 0,
        })
    }

    fn flush(&mut self) -> Result<(), NetError> {
        Ok(())
    }

    fn total_bytes(&self) -> u64 {
        0
    }

    fn messages(&self) -> u64 {
        self.messages
    }

    fn link_loads(&self) -> Vec<LinkLoad> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use gasf_core::bitset::FilterSet;
    use gasf_core::candidate::FilterId;
    use gasf_core::schema::Schema;
    use gasf_core::time::Micros;
    use gasf_core::tuple::Tuple;
    use std::sync::Arc;

    fn emission(recipients: &[usize]) -> Emission {
        let schema = Schema::new(["a", "b"]);
        let tuple = Tuple::new(&schema, 0, Micros(10), vec![1.0, 2.0]).unwrap();
        let set: FilterSet = recipients
            .iter()
            .map(|&i| FilterId::from_index(i))
            .collect();
        Emission {
            tuple: Arc::new(tuple),
            recipients: set,
            emitted_at: Micros(10),
        }
    }

    /// The trait path and the inherent path must be the same code path:
    /// identical Delivery, identical accounting.
    #[test]
    fn overlay_behind_seam_is_byte_identical() {
        let topo = Topology::ring(5).build();
        let members: Vec<NodeId> = (0..5).map(NodeId).collect();

        let mut direct = Overlay::new(topo.clone());
        let g1 = direct.create_group("g", &members).unwrap();
        let e = emission(&[0, 1, 2]);
        let d1 = direct
            .multicast_emission(g1, NodeId(0), &e, |f| NodeId(f.index() as u32 + 1))
            .unwrap();

        let mut seamed = Overlay::new(topo);
        let g2 = seamed.create_group("g", &members).unwrap();
        let t: &mut dyn Transport = &mut seamed;
        let d2 = t
            .send_emission(g2, NodeId(0), &e, &mut |f| NodeId(f.index() as u32 + 1))
            .unwrap();
        t.flush().unwrap();

        assert_eq!(d1, d2);
        assert_eq!(Transport::total_bytes(&seamed), direct.total_bytes());
        assert_eq!(Transport::messages(&seamed), direct.messages());
        let loads = Transport::link_loads(&seamed);
        assert!(!loads.is_empty());
        assert_eq!(
            loads.iter().map(|l| l.bytes).sum::<u64>(),
            direct.total_bytes()
        );
    }

    #[test]
    fn null_transport_dedups_recipients_and_counts_messages() {
        let mut t = NullTransport::new();
        let e = emission(&[0, 1, 2]);
        // Filters 0 and 1 map to the same node.
        let d = t
            .send_emission(GroupId::from_raw(1), NodeId(9), &e, &mut |f| {
                NodeId(if f.index() < 2 { 3 } else { 4 })
            })
            .unwrap();
        assert_eq!(d.latencies.len(), 2);
        assert_eq!(d.bytes_on_wire, 0);
        assert_eq!(t.messages(), 1);
        assert_eq!(t.total_bytes(), 0);
        assert!(t.link_loads().is_empty());
    }
}
