//! DHT overlay and Scribe-like tuple-level multicast.
//!
//! Solar multicasts events on top of a Pastry ring via Scribe (§4.1.1):
//! every group has a rendezvous *root* (the node owning the group key);
//! members join by routing toward the root, and the union of the reverse
//! routes forms the dissemination tree. Our overlay uses successor routing
//! on a hashed ring — the tree shapes and sharing behaviour match what the
//! experiments need, while staying fully deterministic.
//!
//! `multicast` is **tuple-level** (§2.2.1): each message can address a
//! different subset of the group, the tree is pruned to that subset, and
//! the message crosses every link at most once — so the more recipients
//! share a tuple, the fewer bytes per recipient.

use crate::topology::{NodeId, Topology};
use gasf_core::candidate::FilterId;
use gasf_core::engine::Emission;
use gasf_core::time::Micros;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// Identifier of a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(u64);

impl GroupId {
    /// The raw 64-bit value (the hash of the group name), for wire
    /// codecs that must ship the id byte-for-byte.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value (the inverse of
    /// [`GroupId::raw`], for the decode side of a wire codec). The value
    /// is only meaningful on an overlay that created the same group.
    pub const fn from_raw(raw: u64) -> Self {
        GroupId(raw)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{:08x}", self.0)
    }
}

/// Overlay tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayConfig {
    /// Software cost of receiving + forwarding a message at one overlay
    /// node (serialisation, group lookup, socket push). The paper measured
    /// ~130 ms end-to-end for Solar's overlay multicast on a 7-node ring
    /// and >50 ms for invoking application-level multicast at all — this
    /// constant dominates the latency (§3.2, §4.1.2).
    pub software_delay: Micros,
    /// Per-message header overhead in bytes (overlay + transport headers).
    pub header_bytes: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            software_delay: Micros::from_millis(25),
            header_bytes: 48,
        }
    }
}

/// Errors from overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The group id was never created on this overlay.
    UnknownGroup(GroupId),
    /// A recipient is not a member of the group.
    NotAMember(NodeId),
    /// Two nodes have no connecting path.
    Disconnected(NodeId, NodeId),
    /// A node id is outside the topology.
    UnknownNode(NodeId),
    /// A group needs at least one member.
    EmptyGroup,
    /// The node's overlay process is marked failed (see
    /// [`Overlay::fail_node`]); it cannot send, join, or be failed again
    /// until [`Overlay::recover_node`] revives it.
    NodeFailed(NodeId),
    /// A real transport (e.g. the TCP transport in `gasf-wire`) failed at
    /// the I/O layer — connection refused, peer hung up, frame rejected.
    /// Carries the transport's own description; the analytic overlay
    /// never produces this variant.
    Transport(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownGroup(g) => write!(f, "unknown multicast group {g}"),
            NetError::NotAMember(n) => write!(f, "node {n} is not a group member"),
            NetError::Disconnected(a, b) => write!(f, "no path between {a} and {b}"),
            NetError::UnknownNode(n) => write!(f, "node {n} is not in the topology"),
            NetError::EmptyGroup => write!(f, "multicast group needs at least one member"),
            NetError::NodeFailed(n) => write!(f, "node {n} has failed"),
            NetError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result of one multicast/unicast send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time (relative to the send) per recipient.
    pub latencies: BTreeMap<NodeId, Micros>,
    /// Total bytes that crossed underlay links for this send.
    pub bytes_on_wire: u64,
    /// Overlay hops taken (tree edges + source-to-root leg).
    pub overlay_hops: usize,
    /// The share of [`bytes_on_wire`](Self::bytes_on_wire) that crossed
    /// *repaired* tree edges — branches re-grafted by the self-repair a
    /// [`fail_node`](Overlay::fail_node) triggered. Zero in a fault-free
    /// run; after a failure this is the per-send cost of the detours the
    /// repair introduced (the one-time control cost of the repair itself
    /// is reported by [`fail_node`](Overlay::fail_node) and accumulated
    /// in [`Overlay::repair_bytes`]).
    pub repair_bytes: u64,
}

impl Delivery {
    /// The slowest recipient's latency.
    pub fn max_latency(&self) -> Micros {
        self.latencies
            .values()
            .copied()
            .max()
            .unwrap_or(Micros::ZERO)
    }

    /// Mean recipient latency.
    pub fn mean_latency(&self) -> Micros {
        if self.latencies.is_empty() {
            return Micros::ZERO;
        }
        Micros(
            self.latencies.values().map(|l| l.as_micros()).sum::<u64>()
                / self.latencies.len() as u64,
        )
    }
}

#[derive(Debug)]
struct Group {
    root: NodeId,
    members: Vec<NodeId>,
    /// Tree edges: child → parent (root has no entry).
    parent: HashMap<NodeId, NodeId>,
    /// Tree edges (as `(parent, child)` id pairs) created by self-repair
    /// after a node failure — what [`Delivery::repair_bytes`] accounts.
    repaired: HashSet<(u32, u32)>,
}

/// A multicast group split into several independent rendezvous trees, one
/// per producer shard (see [`Overlay::create_sharded_group`]).
///
/// Every tree spans the same membership; they differ only in root (and
/// therefore shape), spreading the per-message forwarding work of a
/// sharded source across the overlay instead of serialising it at one
/// root node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedGroup {
    shards: Vec<GroupId>,
}

impl ShardedGroup {
    /// Number of shard trees.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard group ids, in shard order.
    pub fn ids(&self) -> &[GroupId] {
        &self.shards
    }

    /// The shard tree a stream key (e.g. a tuple sequence number) maps
    /// to: `splitmix64(key) % shards`, stable across runs.
    pub fn shard_for(&self, key: u64) -> GroupId {
        self.shards[(splitmix64(key) % self.shards.len() as u64) as usize]
    }
}

/// What one [`Overlay::fail_node`] repair pass did: how many branches
/// were re-grafted, how many rendezvous trees moved to a new root, and
/// what the repair control traffic (Scribe re-JOIN messages) cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Orphaned branches re-grafted toward their root (plus, after a root
    /// failure, every member's re-join to the new root).
    pub regrafts: usize,
    /// Groups whose rendezvous root was the failed node and moved to the
    /// next live ring successor.
    pub reroots: usize,
    /// Overlay hops the re-JOIN control messages took.
    pub control_hops: usize,
    /// Underlay bytes the re-JOIN control messages cost (also accumulated
    /// into the overlay's traffic counters and
    /// [`Overlay::repair_bytes`]).
    pub control_bytes: u64,
}

/// A DHT-ring overlay with Scribe-like multicast over a [`Topology`].
#[derive(Debug)]
pub struct Overlay {
    topology: Topology,
    config: OverlayConfig,
    /// Ring order: node ids sorted by hashed position.
    ring: Vec<NodeId>,
    groups: HashMap<GroupId, Group>,
    link_bytes: HashMap<(u32, u32), u64>,
    messages: u64,
    /// Reusable recipient-node buffer for the borrow-based
    /// [`multicast_emission`](Overlay::multicast_emission) path.
    scratch_nodes: Vec<NodeId>,
    /// Nodes whose overlay process is currently failed (fail-stop; the
    /// underlay keeps forwarding — see [`Overlay::fail_node`]).
    failed: BTreeSet<NodeId>,
    /// Repair operations (re-grafts + re-roots) performed so far.
    repairs: u64,
    /// Underlay bytes spent on repair control traffic so far.
    repair_bytes: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

impl Overlay {
    /// Builds an overlay over `topology` with default configuration.
    pub fn new(topology: Topology) -> Self {
        Self::with_config(topology, OverlayConfig::default())
    }

    /// Builds an overlay with explicit configuration.
    ///
    /// The ring order follows node ids: Pastry's proximity-aware routing
    /// keeps overlay neighbours physically close, which we model by
    /// aligning the DHT ring with the deployment order (nodes are
    /// typically numbered along the mesh).
    pub fn with_config(topology: Topology, config: OverlayConfig) -> Self {
        let ring: Vec<NodeId> = topology.nodes().collect();
        Overlay {
            topology,
            config,
            ring,
            groups: HashMap::new(),
            link_bytes: HashMap::new(),
            messages: 0,
            scratch_nodes: Vec::new(),
            failed: BTreeSet::new(),
            repairs: 0,
            repair_bytes: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration in effect.
    pub fn config(&self) -> OverlayConfig {
        self.config
    }

    /// The live node owning a key: the ring slot the key hashes into, or
    /// — when that node has failed — its first live clockwise successor
    /// (Pastry's key-ownership handover on node departure).
    fn owner(&self, key: u64) -> NodeId {
        let slot = (key % self.ring.len() as u64) as usize;
        for step in 0..self.ring.len() {
            let n = self.ring[(slot + step) % self.ring.len()];
            if !self.failed.contains(&n) {
                return n;
            }
        }
        // Every node failed: degenerate, but keep the mapping total.
        self.ring[slot]
    }

    /// Overlay route from `from` to `to`: clockwise successor walk on the
    /// ring (Chord-style), skipping failed nodes — a live overlay routes
    /// around dead neighbours. Includes both endpoints.
    fn overlay_route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut route = vec![from];
        if from == to {
            return route;
        }
        let start = self
            .ring
            .iter()
            .position(|&n| n == from)
            .expect("node on ring");
        let mut i = start;
        loop {
            i = (i + 1) % self.ring.len();
            let n = self.ring[i];
            if n == to {
                route.push(n);
                return route;
            }
            if !self.failed.contains(&n) {
                route.push(n);
            }
        }
    }

    /// Creates a multicast group rooted at the owner of `hash(name)`,
    /// with Scribe-style join routes from every member.
    ///
    /// # Errors
    /// * [`NetError::EmptyGroup`] without members,
    /// * [`NetError::UnknownNode`] for members outside the topology.
    pub fn create_group(&mut self, name: &str, members: &[NodeId]) -> Result<GroupId, NetError> {
        if members.is_empty() {
            return Err(NetError::EmptyGroup);
        }
        for &m in members {
            if m.index() >= self.topology.len() {
                return Err(NetError::UnknownNode(m));
            }
            if self.failed.contains(&m) {
                return Err(NetError::NodeFailed(m));
            }
        }
        let id = GroupId(hash_str(name));
        let root = self.owner(id.0);
        let mut parent = HashMap::new();
        for &m in members {
            // join: walk toward the root; each hop's next node becomes the
            // parent, stopping early when we meet the existing tree.
            let route = self.overlay_route(m, root);
            for pair in route.windows(2) {
                if parent.contains_key(&pair[0]) || pair[0] == root {
                    break;
                }
                parent.insert(pair[0], pair[1]);
            }
        }
        self.groups.insert(
            id,
            Group {
                root,
                members: members.to_vec(),
                parent,
                repaired: HashSet::new(),
            },
        );
        Ok(id)
    }

    /// The rendezvous root of a group.
    ///
    /// # Errors
    /// Returns [`NetError::UnknownGroup`] for unknown ids.
    pub fn group_root(&self, group: GroupId) -> Result<NodeId, NetError> {
        self.groups
            .get(&group)
            .map(|g| g.root)
            .ok_or(NetError::UnknownGroup(group))
    }

    /// Removes a multicast group entirely, dropping its tree state.
    /// Subsequent sends on the id fail with [`NetError::UnknownGroup`].
    /// This is how a control plane retires a tree it replaced (e.g. after
    /// regrouping) so long-lived deployments don't accumulate dead groups.
    ///
    /// # Errors
    /// Returns [`NetError::UnknownGroup`] for unknown ids.
    pub fn remove_group(&mut self, group: GroupId) -> Result<(), NetError> {
        self.groups
            .remove(&group)
            .map(|_| ())
            .ok_or(NetError::UnknownGroup(group))
    }

    /// The current members of a group.
    ///
    /// # Errors
    /// Returns [`NetError::UnknownGroup`] for unknown ids.
    pub fn group_members(&self, group: GroupId) -> Result<&[NodeId], NetError> {
        self.groups
            .get(&group)
            .map(|g| g.members.as_slice())
            .ok_or(NetError::UnknownGroup(group))
    }

    /// Adds a member to an existing group — the Scribe join: the node
    /// routes toward the rendezvous root and grafts onto the first tree
    /// node its join route meets. Paths of existing members are untouched,
    /// so deliveries they were receiving are bit-for-bit unaffected.
    /// Joining twice is a no-op.
    ///
    /// # Errors
    /// [`NetError::UnknownGroup`] / [`NetError::UnknownNode`].
    pub fn join_group(&mut self, group: GroupId, node: NodeId) -> Result<(), NetError> {
        if node.index() >= self.topology.len() {
            return Err(NetError::UnknownNode(node));
        }
        if self.failed.contains(&node) {
            return Err(NetError::NodeFailed(node));
        }
        let root = self.group_root(group)?;
        if self
            .groups
            .get(&group)
            .is_some_and(|g| g.members.contains(&node))
        {
            return Ok(());
        }
        let route = self.overlay_route(node, root);
        let g = self
            .groups
            .get_mut(&group)
            .expect("group_root proved the group exists");
        g.members.push(node);
        for pair in route.windows(2) {
            if g.parent.contains_key(&pair[0]) || pair[0] == root {
                break;
            }
            g.parent.insert(pair[0], pair[1]);
        }
        Ok(())
    }

    /// Removes a member from a group — the Scribe leave: the departing
    /// node's branch is pruned only as far as no remaining member depends
    /// on it, and every surviving member keeps its exact path (no tree
    /// rebuild). The group may become empty; multicasting to an empty
    /// recipient set is well-defined, and a later
    /// [`join_group`](Self::join_group) revives it.
    ///
    /// # Errors
    /// [`NetError::UnknownGroup`], or [`NetError::NotAMember`] when the
    /// node is not currently a member.
    pub fn leave_group(&mut self, group: GroupId, node: NodeId) -> Result<(), NetError> {
        let g = self
            .groups
            .get_mut(&group)
            .ok_or(NetError::UnknownGroup(group))?;
        let Some(pos) = g.members.iter().position(|&m| m == node) else {
            return Err(NetError::NotAMember(node));
        };
        g.members.remove(pos);
        // Prune: keep exactly the chains the remaining members stand on.
        let mut needed: HashSet<NodeId> = HashSet::new();
        for &m in &g.members {
            let mut cur = m;
            while cur != g.root && needed.insert(cur) {
                cur = *g
                    .parent
                    .get(&cur)
                    .expect("tree connects every member to the root");
            }
        }
        g.parent.retain(|child, _| needed.contains(child));
        Ok(())
    }

    /// Joins a node to every shard tree of a [`ShardedGroup`]. Each tree
    /// grafts independently; sibling trees are never rebuilt.
    ///
    /// # Errors
    /// Same as [`join_group`](Self::join_group).
    pub fn join_sharded_group(
        &mut self,
        group: &ShardedGroup,
        node: NodeId,
    ) -> Result<(), NetError> {
        for &id in group.ids() {
            self.join_group(id, node)?;
        }
        Ok(())
    }

    /// Removes a node from every shard tree of a [`ShardedGroup`],
    /// pruning each tree independently.
    ///
    /// # Errors
    /// Same as [`leave_group`](Self::leave_group).
    pub fn leave_sharded_group(
        &mut self,
        group: &ShardedGroup,
        node: NodeId,
    ) -> Result<(), NetError> {
        for &id in group.ids() {
            self.leave_group(id, node)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // node failure & Scribe self-repair
    // ------------------------------------------------------------------

    /// Marks a node's overlay process as **failed** (fail-stop) and
    /// repairs every multicast tree that depended on it — the Scribe
    /// self-repair protocol:
    ///
    /// * the node stops being a member of any group (its deliveries end);
    /// * **interior failure**: children orphaned by the failed forwarder
    ///   re-graft by routing toward their rendezvous root and joining the
    ///   first live tree node their route meets — every surviving
    ///   member's delivery resumes, and subtrees below the orphans keep
    ///   their exact paths;
    /// * **root failure**: key ownership moves to the next live ring
    ///   successor and every member re-joins toward the new root (the
    ///   tree is rebuilt from scratch, as Scribe must).
    ///
    /// The re-JOIN control messages are accounted like any other traffic
    /// (plus the dedicated [`repairs`](Self::repairs) /
    /// [`repair_bytes`](Self::repair_bytes) counters), and tree edges
    /// created by repair are tracked so subsequent deliveries report the
    /// detour share in [`Delivery::repair_bytes`].
    ///
    /// Failure is modelled at the overlay (process) level: the underlay
    /// keeps store-and-forwarding through the host, the way a crashed
    /// broker process leaves its machine's network stack running. The
    /// paper scopes network dynamics out (§1.2); this keeps repair fully
    /// deterministic.
    ///
    /// ```rust
    /// use gasf_net::{NodeId, Overlay, Topology};
    ///
    /// # fn main() -> Result<(), gasf_net::NetError> {
    /// let mut overlay = Overlay::new(Topology::ring(7).build());
    /// let members: Vec<NodeId> = (0..7).map(NodeId).collect();
    /// let group = overlay.create_group("sensors", &members)?;
    ///
    /// // Fail an interior forwarder: the tree self-repairs and every
    /// // surviving member keeps receiving.
    /// let root = overlay.group_root(group)?;
    /// let victim = members.iter().copied().find(|&n| n != root).unwrap();
    /// let repair = overlay.fail_node(victim)?;
    /// assert!(overlay.is_failed(victim));
    ///
    /// let recipients: Vec<NodeId> = members
    ///     .iter()
    ///     .copied()
    ///     .filter(|&n| n != victim && n != root)
    ///     .collect();
    /// let delivery = overlay.multicast(group, root, &recipients, 100)?;
    /// assert_eq!(delivery.latencies.len(), recipients.len());
    /// // repair work is accounted: if the victim forwarded for anyone,
    /// // its orphans re-grafted and this send crosses repaired branches
    /// assert_eq!(delivery.repair_bytes > 0, repair.regrafts > 0);
    ///
    /// // a revived node re-joins explicitly, like a restarted Scribe node
    /// overlay.recover_node(victim)?;
    /// overlay.join_group(group, victim)?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// [`NetError::UnknownNode`] outside the topology,
    /// [`NetError::NodeFailed`] when the node is already failed.
    pub fn fail_node(&mut self, node: NodeId) -> Result<RepairReport, NetError> {
        if node.index() >= self.topology.len() {
            return Err(NetError::UnknownNode(node));
        }
        if !self.failed.insert(node) {
            return Err(NetError::NodeFailed(node));
        }
        let mut report = RepairReport::default();
        // Deterministic repair order: ascending group id.
        let mut ids: Vec<GroupId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let mut g = self.groups.remove(&id).expect("listed above");
            self.repair_group(&mut g, node, &mut report);
            self.groups.insert(id, g);
        }
        self.repairs += (report.regrafts + report.reroots) as u64;
        self.repair_bytes += report.control_bytes;
        Ok(report)
    }

    /// Revives a failed node's overlay process. The node becomes routable
    /// and joinable again, but — like a restarted Scribe node — it holds
    /// no memberships: it re-enters its groups via
    /// [`join_group`](Self::join_group). Returns whether the node was
    /// actually failed (reviving a live node is a no-op).
    ///
    /// # Errors
    /// [`NetError::UnknownNode`] outside the topology.
    pub fn recover_node(&mut self, node: NodeId) -> Result<bool, NetError> {
        if node.index() >= self.topology.len() {
            return Err(NetError::UnknownNode(node));
        }
        Ok(self.failed.remove(&node))
    }

    /// Whether a node's overlay process is currently failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// The currently failed nodes, ascending.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed.iter().copied()
    }

    /// Repair operations (re-grafts + re-roots) performed over the
    /// overlay's lifetime.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Underlay bytes spent on repair control traffic (re-JOIN messages)
    /// over the overlay's lifetime. Also included in
    /// [`total_bytes`](Self::total_bytes) while that counter is unreset.
    pub fn repair_bytes(&self) -> u64 {
        self.repair_bytes
    }

    /// Repairs one group after `failed` went down (see
    /// [`fail_node`](Self::fail_node)).
    fn repair_group(&mut self, g: &mut Group, failed: NodeId, report: &mut RepairReport) {
        if let Some(pos) = g.members.iter().position(|&m| m == failed) {
            g.members.remove(pos);
        }
        // The failed node leaves the tree entirely: its own uplink *and*
        // every child's edge into it — those children are the orphaned
        // chain heads the re-graft walk below picks up. (Removing only
        // the uplink would leave the corpse forwarding for its subtree.)
        g.parent.remove(&failed);
        g.parent.retain(|_, parent| *parent != failed);
        g.repaired.retain(|&(p, c)| p != failed.0 && c != failed.0);
        if g.root == failed {
            // Rendezvous-root failover: ownership moves to the next live
            // ring successor and the tree is rebuilt from scratch.
            report.reroots += 1;
            let slot = self
                .ring
                .iter()
                .position(|&n| n == failed)
                .expect("root is on the ring");
            let mut new_root = g.root;
            for step in 1..=self.ring.len() {
                let n = self.ring[(slot + step) % self.ring.len()];
                if !self.failed.contains(&n) {
                    new_root = n;
                    break;
                }
            }
            g.root = new_root;
            g.parent.clear();
            g.repaired.clear();
            if new_root == failed {
                return; // every node is down; nothing to rebuild
            }
            for m in g.members.clone() {
                self.regraft(g, m, report);
            }
            return;
        }
        // Interior/leaf failure: re-graft exactly the orphaned chain heads
        // that still support a member (orphan subtrees keep their paths).
        let mut orphans: BTreeSet<NodeId> = BTreeSet::new();
        for &m in &g.members {
            let mut cur = m;
            loop {
                if cur == g.root {
                    break;
                }
                match g.parent.get(&cur) {
                    Some(&p) => cur = p,
                    None => {
                        orphans.insert(cur);
                        break;
                    }
                }
            }
        }
        for orphan in orphans {
            self.regraft(g, orphan, report);
        }
    }

    /// One Scribe re-JOIN: `from` routes toward the group root over the
    /// live ring and grafts onto the first tree node it meets, accounting
    /// the control message hop by hop and marking the new edges repaired.
    fn regraft(&mut self, g: &mut Group, from: NodeId, report: &mut RepairReport) {
        let route = self.overlay_route(from, g.root);
        let header = self.config.header_bytes;
        for pair in route.windows(2) {
            if g.parent.contains_key(&pair[0]) || pair[0] == g.root {
                break;
            }
            g.parent.insert(pair[0], pair[1]);
            g.repaired.insert((pair[1].0, pair[0].0));
            if let Ok((_, bytes)) = self.transmit(pair[0], pair[1], header) {
                report.control_hops += 1;
                report.control_bytes += bytes;
            }
        }
        report.regrafts += 1;
        self.messages += 1;
    }

    /// Sends one message of `payload_bytes` from `src` to a subset of the
    /// group. The message travels src → root, then down the tree pruned to
    /// the recipients; every link carries it at most once.
    ///
    /// # Errors
    /// * [`NetError::UnknownGroup`] / [`NetError::NotAMember`],
    /// * [`NetError::Disconnected`] if the underlay lacks a path.
    pub fn multicast(
        &mut self,
        group: GroupId,
        src: NodeId,
        recipients: &[NodeId],
        payload_bytes: usize,
    ) -> Result<Delivery, NetError> {
        if self.failed.contains(&src) {
            return Err(NetError::NodeFailed(src));
        }
        let g = self
            .groups
            .get(&group)
            .ok_or(NetError::UnknownGroup(group))?;
        for r in recipients {
            if !g.members.contains(r) {
                return Err(NetError::NotAMember(*r));
            }
        }
        let root = g.root;
        // Paths from each recipient up to the root (child -> parent chain).
        let mut needed_edges: HashSet<(NodeId, NodeId)> = HashSet::new(); // parent -> child
        let mut repaired_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut up_paths: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &r in recipients {
            let mut path = vec![r];
            let mut cur = r;
            while cur != root {
                let p = *g
                    .parent
                    .get(&cur)
                    .expect("tree connects every member to the root");
                needed_edges.insert((p, cur));
                if g.repaired.contains(&(p.0, cur.0)) {
                    repaired_edges.insert((p, cur));
                }
                path.push(p);
                cur = p;
            }
            path.reverse(); // root .. recipient
            up_paths.insert(r, path);
        }
        let msg_bytes = payload_bytes + self.config.header_bytes;

        // Leg 1: src to root along the overlay (skipped when src == root).
        let mut bytes_on_wire = 0u64;
        let mut overlay_hops = 0usize;
        let mut root_arrival = Micros::ZERO;
        let src_route = self.overlay_route(src, root);
        for pair in src_route.windows(2) {
            let (lat, bytes) = self.transmit(pair[0], pair[1], msg_bytes)?;
            root_arrival += lat;
            bytes_on_wire += bytes;
            overlay_hops += 1;
        }

        // Leg 2: down the pruned tree. Compute arrival per tree node by
        // BFS from the root over the needed edges.
        let mut arrival: HashMap<NodeId, Micros> = HashMap::new();
        arrival.insert(root, root_arrival);
        let mut queue = VecDeque::from([root]);
        let mut edges_by_parent: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(p, c) in &needed_edges {
            edges_by_parent.entry(p).or_default().push(c);
        }
        for v in edges_by_parent.values_mut() {
            v.sort_unstable(); // deterministic order
        }
        let mut repair_bytes = 0u64;
        while let Some(u) = queue.pop_front() {
            let base = arrival[&u];
            if let Some(children) = edges_by_parent.get(&u).cloned() {
                for c in children {
                    let (lat, bytes) = self.transmit(u, c, msg_bytes)?;
                    bytes_on_wire += bytes;
                    overlay_hops += 1;
                    if repaired_edges.contains(&(u, c)) {
                        repair_bytes += bytes;
                    }
                    arrival.insert(c, base + lat);
                    queue.push_back(c);
                }
            }
        }

        let latencies: BTreeMap<NodeId, Micros> =
            recipients.iter().map(|&r| (r, arrival[&r])).collect();
        self.messages += 1;
        Ok(Delivery {
            latencies,
            bytes_on_wire,
            overlay_hops,
            repair_bytes,
        })
    }

    /// Sends one [`Emission`] to the nodes its recipient filters map to —
    /// the borrow-based send path of the sink dataflow.
    ///
    /// `node_of` translates each recipient [`FilterId`] to its subscriber
    /// node (the caller owns that mapping — the overlay knows nothing about
    /// filters). Duplicate nodes are collapsed, the payload size is the
    /// tuple's wire size, and the recipient list is staged in a buffer
    /// reused across calls, so sending allocates nothing per emission.
    ///
    /// # Errors
    /// Same as [`multicast`](Self::multicast).
    pub fn multicast_emission(
        &mut self,
        group: GroupId,
        src: NodeId,
        emission: &Emission,
        mut node_of: impl FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError> {
        let mut nodes = std::mem::take(&mut self.scratch_nodes);
        nodes.clear();
        nodes.extend(emission.recipients.iter().map(&mut node_of));
        nodes.sort_unstable();
        nodes.dedup();
        let result = self.multicast(group, src, &nodes, emission.tuple.wire_size());
        nodes.clear();
        self.scratch_nodes = nodes;
        result
    }

    /// Creates a *sharded* multicast group: `shards` independent
    /// Scribe trees over the same membership, each rooted at the owner of
    /// `hash(name#i)`. A source whose stream is produced by a sharded
    /// engine sends each shard's emissions down that shard's own tree, so
    /// parallel producers do not funnel through a single rendezvous root
    /// (the root of an ordinary group serialises every message of the
    /// group).
    ///
    /// # Errors
    /// Same as [`create_group`](Self::create_group); `shards` of zero is
    /// rejected as [`NetError::EmptyGroup`].
    pub fn create_sharded_group(
        &mut self,
        name: &str,
        members: &[NodeId],
        shards: usize,
    ) -> Result<ShardedGroup, NetError> {
        if shards == 0 {
            return Err(NetError::EmptyGroup);
        }
        let mut ids = Vec::with_capacity(shards);
        for i in 0..shards {
            ids.push(self.create_group(&format!("{name}#{i}"), members)?);
        }
        Ok(ShardedGroup { shards: ids })
    }

    /// Sends one [`Emission`] down the shard tree selected by the
    /// emission's tuple sequence number — the shard-aware counterpart of
    /// [`multicast_emission`](Self::multicast_emission). The shard choice
    /// is deterministic (`splitmix64(seq) % shards`), so replaying a
    /// stream reproduces the same per-tree traffic exactly.
    ///
    /// # Errors
    /// Same as [`multicast`](Self::multicast).
    pub fn multicast_emission_sharded(
        &mut self,
        group: &ShardedGroup,
        src: NodeId,
        emission: &Emission,
        node_of: impl FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError> {
        self.multicast_emission(
            group.shard_for(emission.tuple.seq()),
            src,
            emission,
            node_of,
        )
    }

    /// Sends one message point-to-point along the underlay shortest path
    /// (the "no multicast" baseline).
    ///
    /// # Errors
    /// Returns [`NetError::Disconnected`]/[`NetError::UnknownNode`] when no
    /// path exists.
    pub fn unicast(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: usize,
    ) -> Result<Delivery, NetError> {
        if self.failed.contains(&from) {
            return Err(NetError::NodeFailed(from));
        }
        if self.failed.contains(&to) {
            return Err(NetError::NodeFailed(to));
        }
        let (lat, bytes) = self.transmit(from, to, payload_bytes + self.config.header_bytes)?;
        self.messages += 1;
        Ok(Delivery {
            latencies: BTreeMap::from([(to, lat)]),
            bytes_on_wire: bytes,
            overlay_hops: 1,
            repair_bytes: 0,
        })
    }

    /// One overlay hop: software delay + store-and-forward along the
    /// underlay shortest path, accounting bytes per link.
    fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> Result<(Micros, u64), NetError> {
        if from.index() >= self.topology.len() {
            return Err(NetError::UnknownNode(from));
        }
        let path = self
            .topology
            .path(from, to)
            .ok_or(NetError::Disconnected(from, to))?;
        let mut latency = self.config.software_delay;
        let mut total = 0u64;
        for pair in path.windows(2) {
            let link = self
                .topology
                .link(pair[0], pair[1])
                .expect("BFS path follows links");
            latency += link.transfer_time(bytes);
            let key = if pair[0] <= pair[1] {
                (pair[0].0, pair[1].0)
            } else {
                (pair[1].0, pair[0].0)
            };
            *self.link_bytes.entry(key).or_insert(0) += bytes as u64;
            total += bytes as u64;
        }
        Ok((latency, total))
    }

    /// Total bytes transmitted across all links since construction (or the
    /// last [`reset_stats`](Self::reset_stats)).
    pub fn total_bytes(&self) -> u64 {
        self.link_bytes.values().sum()
    }

    /// The most heavily loaded link's byte count — the bottleneck metric
    /// for low-bandwidth meshes.
    pub fn max_link_bytes(&self) -> u64 {
        self.link_bytes.values().copied().max().unwrap_or(0)
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Per-link byte counters, sorted by endpoint pair. Each entry is an
    /// undirected underlay link `(a, b)` with `a <= b` and the bytes that
    /// crossed it since construction (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn link_loads(&self) -> Vec<(NodeId, NodeId, u64)> {
        let mut loads: Vec<(NodeId, NodeId, u64)> = self
            .link_bytes
            .iter()
            .map(|(&(a, b), &bytes)| (NodeId(a), NodeId(b), bytes))
            .collect();
        loads.sort_unstable();
        loads
    }

    /// Clears the traffic counters (not the groups).
    pub fn reset_stats(&mut self) {
        self.link_bytes.clear();
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring7() -> Overlay {
        Overlay::new(Topology::ring(7).build())
    }

    fn all_nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn group_creation_and_root() {
        let mut o = ring7();
        let g = o.create_group("fluoro", &all_nodes(7)).unwrap();
        let root = o.group_root(g).unwrap();
        assert!(root.index() < 7);
        assert!(o.group_root(GroupId(42)).is_err());
    }

    #[test]
    fn empty_group_rejected() {
        let mut o = ring7();
        assert_eq!(o.create_group("x", &[]), Err(NetError::EmptyGroup));
        assert_eq!(
            o.create_group("x", &[NodeId(99)]),
            Err(NetError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    fn multicast_reaches_all_recipients() {
        let mut o = ring7();
        let members = all_nodes(7);
        let g = o.create_group("grp", &members).unwrap();
        let d = o.multicast(g, NodeId(0), &members[1..], 100).unwrap();
        assert_eq!(d.latencies.len(), 6);
        for lat in d.latencies.values() {
            assert!(*lat > Micros::ZERO);
        }
        assert!(d.max_latency() >= d.mean_latency());
    }

    #[test]
    fn non_member_recipient_rejected() {
        let mut o = ring7();
        let g = o.create_group("grp", &[NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(
            o.multicast(g, NodeId(0), &[NodeId(5)], 10),
            Err(NetError::NotAMember(NodeId(5)))
        );
    }

    #[test]
    fn shared_recipients_cost_less_than_unicasts() {
        // The whole point: one multicast to k recipients uses fewer bytes
        // than k unicasts of the same payload.
        let mut o = ring7();
        let members = all_nodes(7);
        let g = o.create_group("grp", &members).unwrap();
        let d = o.multicast(g, NodeId(0), &members[1..], 200).unwrap();
        let multicast_bytes = d.bytes_on_wire;

        let mut o2 = ring7();
        let mut unicast_bytes = 0;
        for m in &members[1..] {
            unicast_bytes += o2.unicast(NodeId(0), *m, 200).unwrap().bytes_on_wire;
        }
        assert!(
            multicast_bytes < unicast_bytes,
            "multicast {multicast_bytes} vs unicast {unicast_bytes}"
        );
    }

    #[test]
    fn subset_multicast_costs_less_than_full() {
        let mut o = ring7();
        let members = all_nodes(7);
        let g = o.create_group("grp", &members).unwrap();
        let full = o.multicast(g, NodeId(0), &members[1..], 200).unwrap();
        let sub = o.multicast(g, NodeId(0), &members[1..3], 200).unwrap();
        assert!(sub.bytes_on_wire <= full.bytes_on_wire);
        assert_eq!(sub.latencies.len(), 2);
    }

    #[test]
    fn latency_dominated_by_software_delay() {
        // §4.1.2: 130 ms overlay multicast on the 7-node 1 Mbps ring. With
        // 25 ms per overlay hop and small tuples, recipients several hops
        // deep see ~50-175 ms.
        let mut o = ring7();
        let members = all_nodes(7);
        let g = o.create_group("grp", &members).unwrap();
        let d = o.multicast(g, NodeId(0), &members[1..], 60).unwrap();
        let max_ms = d.max_latency().as_millis_f64();
        assert!(
            (50.0..400.0).contains(&max_ms),
            "overlay delay {max_ms} ms out of the Solar ballpark"
        );
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut o = ring7();
        let g = o.create_group("grp", &all_nodes(7)).unwrap();
        assert_eq!(o.total_bytes(), 0);
        o.multicast(g, NodeId(0), &[NodeId(3)], 100).unwrap();
        let after_one = o.total_bytes();
        assert!(after_one > 0);
        o.multicast(g, NodeId(0), &[NodeId(3)], 100).unwrap();
        assert_eq!(o.total_bytes(), after_one * 2);
        assert!(o.max_link_bytes() <= o.total_bytes());
        assert_eq!(o.messages(), 2);
        o.reset_stats();
        assert_eq!(o.total_bytes(), 0);
        assert_eq!(o.messages(), 0);
    }

    #[test]
    fn unicast_on_disconnected_fails() {
        let topo = crate::topology::TopologyBuilder::with_nodes(2).build();
        let mut o = Overlay::new(topo);
        assert!(matches!(
            o.unicast(NodeId(0), NodeId(1), 10),
            Err(NetError::Disconnected(..))
        ));
    }

    #[test]
    fn deterministic_deliveries() {
        let run = || {
            let mut o = ring7();
            let members = all_nodes(7);
            let g = o.create_group("grp", &members).unwrap();
            o.multicast(g, NodeId(0), &members[1..], 123).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn error_display() {
        let e = NetError::NotAMember(NodeId(3));
        assert!(e.to_string().contains("n3"));
    }

    mod membership {
        use super::*;

        #[test]
        fn join_grafts_without_touching_existing_paths() {
            // Existing members' deliveries must be bit-for-bit unaffected
            // by someone else joining.
            let mut grown = ring7();
            let g1 = grown.create_group("grp", &[NodeId(0), NodeId(2)]).unwrap();
            let before = grown.multicast(g1, NodeId(0), &[NodeId(2)], 100).unwrap();
            assert_eq!(
                grown.multicast(g1, NodeId(0), &[NodeId(5)], 100),
                Err(NetError::NotAMember(NodeId(5)))
            );
            grown.join_group(g1, NodeId(5)).unwrap();
            grown.join_group(g1, NodeId(5)).unwrap(); // idempotent
            assert_eq!(grown.group_members(g1).unwrap().len(), 3);
            let after = grown.multicast(g1, NodeId(0), &[NodeId(2)], 100).unwrap();
            assert_eq!(before.latencies, after.latencies);
            assert_eq!(before.bytes_on_wire, after.bytes_on_wire);
            // …and the joiner is reachable
            let d = grown.multicast(g1, NodeId(0), &[NodeId(5)], 100).unwrap();
            assert_eq!(d.latencies.len(), 1);
        }

        #[test]
        fn join_equals_create_with_full_membership() {
            // Creating {a, b} then joining c must behave like creating
            // {a, b, c} (same join-route algorithm, same order).
            let mut grown = ring7();
            let g1 = grown.create_group("grp", &[NodeId(1), NodeId(3)]).unwrap();
            grown.join_group(g1, NodeId(6)).unwrap();

            let mut fresh = ring7();
            let g2 = fresh
                .create_group("grp", &[NodeId(1), NodeId(3), NodeId(6)])
                .unwrap();

            let recipients = [NodeId(1), NodeId(3), NodeId(6)];
            let a = grown.multicast(g1, NodeId(0), &recipients, 64).unwrap();
            let b = fresh.multicast(g2, NodeId(0), &recipients, 64).unwrap();
            assert_eq!(a, b);
        }

        #[test]
        fn leave_prunes_only_the_orphan_branch() {
            let mut o = ring7();
            let members = all_nodes(7);
            let g = o.create_group("grp", &members).unwrap();
            let survivors: Vec<NodeId> = members.iter().copied().filter(|n| n.0 != 4).collect();
            let before = o.multicast(g, NodeId(0), &survivors[1..], 80).unwrap();
            o.leave_group(g, NodeId(4)).unwrap();
            assert_eq!(o.group_members(g).unwrap().len(), 6);
            let after = o.multicast(g, NodeId(0), &survivors[1..], 80).unwrap();
            assert_eq!(before, after, "survivors keep their exact paths");
            assert_eq!(
                o.multicast(g, NodeId(0), &[NodeId(4)], 80),
                Err(NetError::NotAMember(NodeId(4)))
            );
            assert_eq!(
                o.leave_group(g, NodeId(4)),
                Err(NetError::NotAMember(NodeId(4)))
            );
        }

        #[test]
        fn leave_then_rejoin_round_trips() {
            let mut o = ring7();
            let g = o
                .create_group("grp", &[NodeId(0), NodeId(3), NodeId(5)])
                .unwrap();
            o.leave_group(g, NodeId(3)).unwrap();
            o.join_group(g, NodeId(3)).unwrap();
            let d = o.multicast(g, NodeId(0), &[NodeId(3)], 50).unwrap();
            assert_eq!(d.latencies.len(), 1);
        }

        #[test]
        fn sharded_membership_updates_spare_sibling_trees() {
            let mut o = ring7();
            let sg = o
                .create_sharded_group("grp", &[NodeId(0), NodeId(2)], 3)
                .unwrap();
            o.join_sharded_group(&sg, NodeId(6)).unwrap();
            for &id in sg.ids() {
                assert!(o.group_members(id).unwrap().contains(&NodeId(6)));
            }
            // existing member's delivery unchanged on every tree
            let mut fresh = ring7();
            let sg2 = fresh
                .create_sharded_group("grp", &[NodeId(0), NodeId(2)], 3)
                .unwrap();
            for (&id, &id2) in sg.ids().iter().zip(sg2.ids()) {
                let a = o.multicast(id, NodeId(0), &[NodeId(2)], 90).unwrap();
                let b = fresh.multicast(id2, NodeId(0), &[NodeId(2)], 90).unwrap();
                assert_eq!(a.latencies, b.latencies);
            }
            o.leave_sharded_group(&sg, NodeId(6)).unwrap();
            for &id in sg.ids() {
                assert!(!o.group_members(id).unwrap().contains(&NodeId(6)));
            }
        }

        #[test]
        fn remove_group_reclaims_the_id() {
            let mut o = ring7();
            let g = o.create_group("grp", &[NodeId(0), NodeId(1)]).unwrap();
            o.remove_group(g).unwrap();
            assert_eq!(o.remove_group(g), Err(NetError::UnknownGroup(g)));
            assert_eq!(
                o.multicast(g, NodeId(0), &[NodeId(1)], 10),
                Err(NetError::UnknownGroup(g))
            );
            // same name can be created again afterwards
            let g2 = o.create_group("grp", &[NodeId(0), NodeId(1)]).unwrap();
            assert_eq!(g, g2);
        }

        #[test]
        fn join_rejects_unknown_targets() {
            let mut o = ring7();
            let g = o.create_group("grp", &[NodeId(0)]).unwrap();
            assert_eq!(
                o.join_group(g, NodeId(99)),
                Err(NetError::UnknownNode(NodeId(99)))
            );
            assert_eq!(
                o.join_group(GroupId(42), NodeId(1)),
                Err(NetError::UnknownGroup(GroupId(42)))
            );
            assert_eq!(
                o.leave_group(GroupId(42), NodeId(1)),
                Err(NetError::UnknownGroup(GroupId(42)))
            );
        }
    }

    mod failure {
        use super::*;

        /// The lowest-id node that forwards for someone else in the
        /// group's tree (neither root nor a pure leaf), if any.
        fn interior_node(o: &Overlay, g: GroupId) -> Option<NodeId> {
            let group = o.groups.get(&g).unwrap();
            group
                .parent
                .values()
                .copied()
                .filter(|&p| p != group.root)
                .min()
        }

        #[test]
        fn interior_failure_regrafts_and_members_keep_receiving() {
            let mut o = ring7();
            let members = all_nodes(7);
            let g = o.create_group("grp", &members).unwrap();
            let failed = interior_node(&o, g).expect("7-node tree has forwarders");
            let report = o.fail_node(failed).unwrap();
            assert!(report.regrafts > 0, "orphans must re-graft");
            assert_eq!(report.reroots, 0);
            assert!(o.is_failed(failed));
            assert_eq!(o.failed_nodes().collect::<Vec<_>>(), vec![failed]);
            assert!(o.repairs() > 0);

            // every surviving member still receives; sending from the
            // root guarantees the re-grafted orphan is a recipient, so
            // its repaired uplink must appear in the delivery accounting
            let src = o.group_root(g).unwrap();
            let survivors: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&n| n != failed && n != src)
                .collect();
            let d = o.multicast(g, src, &survivors, 100).unwrap();
            assert_eq!(d.latencies.len(), survivors.len());
            // some of the delivery flowed over repaired branches
            assert!(d.repair_bytes > 0, "repaired edges must be accounted");
            assert!(d.repair_bytes <= d.bytes_on_wire);

            // the failed node is out of the membership and cannot send
            assert_eq!(
                o.multicast(g, src, &[failed], 10),
                Err(NetError::NotAMember(failed))
            );
            assert_eq!(
                o.multicast(g, failed, &survivors[1..2], 10),
                Err(NetError::NodeFailed(failed))
            );
        }

        #[test]
        fn failed_node_is_fully_evicted_from_the_tree() {
            // The corpse must neither keep an uplink nor keep forwarding
            // for its children — its children are the ones that re-graft.
            let mut o = ring7();
            let g = o.create_group("grp", &all_nodes(7)).unwrap();
            let failed = interior_node(&o, g).unwrap();
            let orphans: Vec<NodeId> = {
                let group = o.groups.get(&g).unwrap();
                group
                    .parent
                    .iter()
                    .filter(|&(_, p)| *p == failed)
                    .map(|(&c, _)| c)
                    .collect()
            };
            assert!(!orphans.is_empty(), "interior node has children");
            o.fail_node(failed).unwrap();
            let group = o.groups.get(&g).unwrap();
            assert!(!group.parent.contains_key(&failed), "uplink removed");
            assert!(
                group.parent.values().all(|&p| p != failed),
                "no child may still route through the corpse"
            );
            for orphan in orphans {
                assert!(
                    group.parent.contains_key(&orphan),
                    "{orphan} must have re-grafted"
                );
            }
        }

        #[test]
        fn root_failure_hands_over_to_the_live_successor() {
            let mut o = ring7();
            let members = all_nodes(7);
            let g = o.create_group("grp", &members).unwrap();
            let old_root = o.group_root(g).unwrap();
            let report = o.fail_node(old_root).unwrap();
            assert_eq!(report.reroots, 1);
            let new_root = o.group_root(g).unwrap();
            assert_ne!(new_root, old_root);
            assert!(!o.is_failed(new_root));
            // the rebuilt tree still reaches everyone alive
            let survivors: Vec<NodeId> =
                members.iter().copied().filter(|&n| n != old_root).collect();
            let d = o.multicast(g, survivors[0], &survivors[1..], 80).unwrap();
            assert_eq!(d.latencies.len(), survivors.len() - 1);
        }

        #[test]
        fn repair_equals_fresh_join_of_the_survivors() {
            // After an interior failure, the repaired tree must deliver to
            // every survivor just like a freshly built overlay where the
            // failed node never existed in the membership. (Shapes may
            // differ — repair grafts in place — but coverage must not.)
            let mut broken = ring7();
            let members = all_nodes(7);
            let g1 = broken.create_group("grp", &members).unwrap();
            let failed = interior_node(&broken, g1).unwrap();
            broken.fail_node(failed).unwrap();

            let survivors: Vec<NodeId> = members.iter().copied().filter(|&n| n != failed).collect();
            let d = broken
                .multicast(g1, survivors[0], &survivors[1..], 64)
                .unwrap();
            for (node, lat) in &d.latencies {
                assert!(*lat > Micros::ZERO, "{node} starved after repair");
            }
        }

        #[test]
        fn recover_node_rejoins_explicitly() {
            let mut o = ring7();
            let g = o
                .create_group("grp", &[NodeId(0), NodeId(2), NodeId(4)])
                .unwrap();
            o.fail_node(NodeId(2)).unwrap();
            assert_eq!(o.fail_node(NodeId(2)), Err(NetError::NodeFailed(NodeId(2))));
            assert_eq!(
                o.join_group(g, NodeId(2)),
                Err(NetError::NodeFailed(NodeId(2)))
            );
            assert!(o.recover_node(NodeId(2)).unwrap());
            assert!(!o.recover_node(NodeId(2)).unwrap(), "idempotent");
            assert!(!o.is_failed(NodeId(2)));
            // like a restarted Scribe node, it re-enters via join_group
            assert!(!o.group_members(g).unwrap().contains(&NodeId(2)));
            o.join_group(g, NodeId(2)).unwrap();
            let d = o.multicast(g, NodeId(0), &[NodeId(2)], 50).unwrap();
            assert_eq!(d.latencies.len(), 1);
        }

        #[test]
        fn repair_cost_is_accounted() {
            let mut o = ring7();
            let members = all_nodes(7);
            let g = o.create_group("grp", &members).unwrap();
            let failed = interior_node(&o, g).unwrap();
            let bytes_before = o.total_bytes();
            let report = o.fail_node(failed).unwrap();
            assert!(report.control_hops > 0);
            assert!(report.control_bytes > 0);
            assert_eq!(o.repair_bytes(), report.control_bytes);
            assert_eq!(
                o.total_bytes(),
                bytes_before + report.control_bytes,
                "repair traffic flows through the same accounting"
            );
        }

        #[test]
        fn failed_nodes_are_rejected_everywhere() {
            let mut o = ring7();
            o.fail_node(NodeId(3)).unwrap();
            assert_eq!(
                o.create_group("grp", &[NodeId(0), NodeId(3)]),
                Err(NetError::NodeFailed(NodeId(3)))
            );
            assert_eq!(
                o.unicast(NodeId(3), NodeId(0), 10),
                Err(NetError::NodeFailed(NodeId(3)))
            );
            assert_eq!(
                o.unicast(NodeId(0), NodeId(3), 10),
                Err(NetError::NodeFailed(NodeId(3)))
            );
            assert_eq!(
                o.fail_node(NodeId(99)),
                Err(NetError::UnknownNode(NodeId(99)))
            );
            assert_eq!(
                o.recover_node(NodeId(99)),
                Err(NetError::UnknownNode(NodeId(99)))
            );
        }

        #[test]
        fn groups_created_after_a_failure_route_around_it() {
            let mut o = ring7();
            o.fail_node(NodeId(1)).unwrap();
            let members: Vec<NodeId> = all_nodes(7)
                .into_iter()
                .filter(|&n| n != NodeId(1))
                .collect();
            let g = o.create_group("grp", &members).unwrap();
            assert_ne!(o.group_root(g).unwrap(), NodeId(1));
            let d = o.multicast(g, members[0], &members[1..], 90).unwrap();
            assert_eq!(d.latencies.len(), members.len() - 1);
            assert_eq!(d.repair_bytes, 0, "no repaired edges in a fresh tree");
        }

        #[test]
        fn fault_free_deliveries_report_zero_repair_bytes() {
            let mut o = ring7();
            let members = all_nodes(7);
            let g = o.create_group("grp", &members).unwrap();
            let d = o.multicast(g, NodeId(0), &members[1..], 100).unwrap();
            assert_eq!(d.repair_bytes, 0);
            assert_eq!(o.repairs(), 0);
            assert_eq!(o.repair_bytes(), 0);
        }
    }

    mod emission_path {
        use super::*;
        use gasf_core::bitset::FilterSet;
        use gasf_core::schema::Schema;
        use gasf_core::tuple::TupleBuilder;
        use std::sync::Arc;

        fn emission(filters: &[usize]) -> Emission {
            let schema = Schema::new(["t"]);
            let mut b = TupleBuilder::new(&schema);
            let tuple = b.at_millis(10).set("t", 1.0).build().unwrap();
            let mut recipients = FilterSet::new();
            for &f in filters {
                recipients.insert(FilterId::from_index(f));
            }
            Emission {
                tuple: Arc::new(tuple),
                recipients,
                emitted_at: Micros::from_millis(10),
            }
        }

        #[test]
        fn emission_send_matches_explicit_multicast() {
            let e = emission(&[0, 2]);
            let nodes = [NodeId(3), NodeId(5), NodeId(1)];

            let mut a = ring7();
            let g = a.create_group("grp", &all_nodes(7)).unwrap();
            let via_emission = a
                .multicast_emission(g, NodeId(0), &e, |f| nodes[f.index()])
                .unwrap();

            let mut b = ring7();
            let g = b.create_group("grp", &all_nodes(7)).unwrap();
            let explicit = b
                .multicast(g, NodeId(0), &[NodeId(1), NodeId(3)], e.tuple.wire_size())
                .unwrap();

            assert_eq!(via_emission, explicit);
            assert_eq!(a.total_bytes(), b.total_bytes());
        }

        #[test]
        fn duplicate_recipient_nodes_collapse() {
            // Two filters living on the same node must cost one delivery.
            let e = emission(&[0, 1]);
            let mut o = ring7();
            let g = o.create_group("grp", &all_nodes(7)).unwrap();
            let d = o
                .multicast_emission(g, NodeId(0), &e, |_| NodeId(4))
                .unwrap();
            assert_eq!(d.latencies.len(), 1);

            let mut o2 = ring7();
            let g2 = o2.create_group("grp", &all_nodes(7)).unwrap();
            let single = o2
                .multicast(g2, NodeId(0), &[NodeId(4)], e.tuple.wire_size())
                .unwrap();
            assert_eq!(d, single);
        }

        #[test]
        fn sharded_group_spreads_roots_and_delivers() {
            let mut o = ring7();
            let sg = o.create_sharded_group("grp", &all_nodes(7), 4).unwrap();
            assert_eq!(sg.shard_count(), 4);
            assert_eq!(sg.ids().len(), 4);
            // the shard choice is deterministic and covers the shard set
            let mut seen = std::collections::HashSet::new();
            for seq in 0..64u64 {
                assert_eq!(sg.shard_for(seq), sg.shard_for(seq));
                seen.insert(sg.shard_for(seq));
            }
            assert!(seen.len() > 1, "64 keys should hit several shards");
            // every shard tree reaches all recipients
            for &id in sg.ids() {
                let e = emission(&[0, 1]);
                let d = o
                    .multicast_emission(id, NodeId(0), &e, |f| NodeId(f.index() as u32 + 1))
                    .unwrap();
                assert_eq!(d.latencies.len(), 2);
            }
        }

        #[test]
        fn sharded_send_matches_the_selected_tree() {
            let e = emission(&[0, 2]);
            let nodes = [NodeId(3), NodeId(5), NodeId(1)];

            let mut a = ring7();
            let sg = a.create_sharded_group("grp", &all_nodes(7), 3).unwrap();
            let via_sharded = a
                .multicast_emission_sharded(&sg, NodeId(0), &e, |f| nodes[f.index()])
                .unwrap();

            let mut b = ring7();
            let sg2 = b.create_sharded_group("grp", &all_nodes(7), 3).unwrap();
            let explicit = b
                .multicast_emission(sg2.shard_for(e.tuple.seq()), NodeId(0), &e, |f| {
                    nodes[f.index()]
                })
                .unwrap();
            assert_eq!(via_sharded, explicit);
        }

        #[test]
        fn sharded_group_rejects_zero_shards() {
            let mut o = ring7();
            assert_eq!(
                o.create_sharded_group("grp", &all_nodes(7), 0),
                Err(NetError::EmptyGroup)
            );
        }

        #[test]
        fn single_shard_group_behaves_like_its_tree() {
            let e = emission(&[0]);
            let mut o = ring7();
            let sg = o.create_sharded_group("grp", &all_nodes(7), 1).unwrap();
            assert_eq!(sg.shard_for(0), sg.ids()[0]);
            let d = o
                .multicast_emission_sharded(&sg, NodeId(0), &e, |_| NodeId(4))
                .unwrap();
            assert_eq!(d.latencies.len(), 1);
        }

        #[test]
        fn emission_send_surfaces_errors() {
            let e = emission(&[0]);
            let mut o = ring7();
            let g = o.create_group("grp", &[NodeId(0), NodeId(1)]).unwrap();
            assert_eq!(
                o.multicast_emission(g, NodeId(0), &e, |_| NodeId(6)),
                Err(NetError::NotAMember(NodeId(6)))
            );
        }
    }
}
