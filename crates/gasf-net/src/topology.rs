//! Physical/underlay topology: nodes, links and shortest paths.

use gasf_core::time::Micros;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a node in a [`Topology`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Capacity and propagation delay of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Usable bandwidth in bits per second. The paper notes that a
    /// wireless mesh's *effective* bandwidth is much smaller than its link
    /// capacity — configure the effective value here.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: Micros,
}

impl Default for LinkSpec {
    /// 1 Mbps effective bandwidth with 1 ms propagation — the Emulab
    /// configuration of §4.1.2.
    fn default() -> Self {
        LinkSpec {
            bandwidth_bps: 1_000_000,
            propagation: Micros::from_millis(1),
        }
    }
}

impl LinkSpec {
    /// Time to push `bytes` onto the wire plus propagation.
    pub fn transfer_time(&self, bytes: usize) -> Micros {
        let tx_us = (bytes as u64 * 8).saturating_mul(1_000_000) / self.bandwidth_bps.max(1);
        Micros(tx_us) + self.propagation
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge {
    to: u32,
    spec: LinkSpec,
}

/// An undirected multihop network.
///
/// ```rust
/// use gasf_net::Topology;
/// let topo = Topology::ring(7).build();
/// assert_eq!(topo.len(), 7);
/// assert!(topo.path(gasf_net::NodeId(0), gasf_net::NodeId(3)).is_some());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    adj: Vec<Vec<Edge>>,
}

impl Topology {
    /// Starts building a ring of `n` nodes (the paper's Emulab/DHT layout).
    pub fn ring(n: usize) -> TopologyBuilder {
        let mut b = TopologyBuilder::empty(n);
        for i in 0..n {
            b.pending.push((i, (i + 1) % n));
        }
        if n == 2 {
            b.pending.truncate(1);
        }
        b
    }

    /// Starts building a star: node 0 is the hub.
    pub fn star(n: usize) -> TopologyBuilder {
        let mut b = TopologyBuilder::empty(n);
        for i in 1..n {
            b.pending.push((0, i));
        }
        b
    }

    /// Starts building a line (chain) of `n` nodes — the worst case for
    /// multihop wireless meshes.
    pub fn line(n: usize) -> TopologyBuilder {
        let mut b = TopologyBuilder::empty(n);
        for i in 1..n {
            b.pending.push((i - 1, i));
        }
        b
    }

    /// Starts building a `w × h` grid (a typical mesh deployment).
    pub fn grid(w: usize, h: usize) -> TopologyBuilder {
        let mut b = TopologyBuilder::empty(w * h);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    b.pending.push((i, i + 1));
                }
                if y + 1 < h {
                    b.pending.push((i, i + w));
                }
            }
        }
        b
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// The link between two adjacent nodes, if any.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkSpec> {
        self.adj
            .get(a.index())?
            .iter()
            .find(|e| e.to == b.0)
            .map(|e| e.spec)
    }

    /// Minimum-hop path between two nodes (BFS), `None` if disconnected.
    /// The returned path includes both endpoints.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        if from.index() >= self.len() || to.index() >= self.len() {
            return None;
        }
        let mut prev: Vec<Option<u32>> = vec![None; self.len()];
        let mut visited = vec![false; self.len()];
        visited[from.index()] = true;
        let mut queue = VecDeque::from([from.0]);
        while let Some(u) = queue.pop_front() {
            for e in &self.adj[u as usize] {
                if !visited[e.to as usize] {
                    visited[e.to as usize] = true;
                    prev[e.to as usize] = Some(u);
                    if e.to == to.0 {
                        let mut path = vec![to];
                        let mut cur = u;
                        loop {
                            path.push(NodeId(cur));
                            match prev[cur as usize] {
                                Some(p) => cur = p,
                                None => break,
                            }
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.to);
                }
            }
        }
        None
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut visited = vec![false; self.len()];
        let mut queue = VecDeque::from([0u32]);
        visited[0] = true;
        let mut seen = 1;
        while let Some(u) = queue.pop_front() {
            for e in &self.adj[u as usize] {
                if !visited[e.to as usize] {
                    visited[e.to as usize] = true;
                    seen += 1;
                    queue.push_back(e.to);
                }
            }
        }
        seen == self.len()
    }
}

/// Builder finishing a [`Topology`] with uniform or per-link specs.
#[derive(Debug)]
pub struct TopologyBuilder {
    n: usize,
    pending: Vec<(usize, usize)>,
    spec: LinkSpec,
    extra: Vec<(usize, usize, LinkSpec)>,
}

impl TopologyBuilder {
    fn empty(n: usize) -> Self {
        TopologyBuilder {
            n,
            pending: Vec::new(),
            spec: LinkSpec::default(),
            extra: Vec::new(),
        }
    }

    /// Custom builder with no predefined links.
    pub fn with_nodes(n: usize) -> Self {
        Self::empty(n)
    }

    /// Sets the uniform bandwidth (bits per second) for all builder links.
    pub fn bandwidth_bps(mut self, bps: u64) -> Self {
        self.spec.bandwidth_bps = bps.max(1);
        self
    }

    /// Sets the uniform propagation delay for all builder links.
    pub fn propagation(mut self, delay: Micros) -> Self {
        self.spec.propagation = delay;
        self
    }

    /// Adds an extra link with an explicit spec.
    pub fn link(mut self, a: usize, b: usize, spec: LinkSpec) -> Self {
        self.extra.push((a, b, spec));
        self
    }

    /// Finalises the topology.
    ///
    /// # Panics
    /// Panics if a link references a node index `>= n` or is a self-loop —
    /// both are construction-time programming errors.
    pub fn build(self) -> Topology {
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); self.n];
        let add = |adj: &mut Vec<Vec<Edge>>, a: usize, b: usize, spec: LinkSpec| {
            assert!(a < self.n && b < self.n, "link ({a},{b}) out of range");
            assert_ne!(a, b, "self-loops are not allowed");
            if !adj[a].iter().any(|e| e.to == b as u32) {
                adj[a].push(Edge { to: b as u32, spec });
                adj[b].push(Edge { to: a as u32, spec });
            }
        };
        for (a, b) in self.pending {
            add(&mut adj, a, b, self.spec);
        }
        for (a, b, spec) in self.extra {
            add(&mut adj, a, b, spec);
        }
        Topology { adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_paths() {
        let t = Topology::ring(7).build();
        assert!(t.is_connected());
        let p = t.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 4); // 0-1-2-3
        let p = t.path(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(p.len(), 3); // 0-6-5
        assert_eq!(t.path(NodeId(2), NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn two_node_ring_has_single_link() {
        let t = Topology::ring(2).build();
        assert!(t.link(NodeId(0), NodeId(1)).is_some());
        assert_eq!(t.path(NodeId(0), NodeId(1)).unwrap().len(), 2);
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::star(5).build();
        let p = t.path(NodeId(1), NodeId(4)).unwrap();
        assert_eq!(p, vec![NodeId(1), NodeId(0), NodeId(4)]);
    }

    #[test]
    fn line_is_a_chain() {
        let t = Topology::line(4).build();
        assert_eq!(t.path(NodeId(0), NodeId(3)).unwrap().len(), 4);
        assert!(t.link(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn grid_dimensions() {
        let t = Topology::grid(3, 2).build();
        assert_eq!(t.len(), 6);
        assert!(t.is_connected());
        // Manhattan path 0 -> 5 has 3 hops
        assert_eq!(t.path(NodeId(0), NodeId(5)).unwrap().len(), 4);
    }

    #[test]
    fn disconnected_detected() {
        let t = TopologyBuilder::with_nodes(3)
            .link(0, 1, LinkSpec::default())
            .build();
        assert!(!t.is_connected());
        assert!(t.path(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn transfer_time_model() {
        let l = LinkSpec {
            bandwidth_bps: 1_000_000,
            propagation: Micros::from_millis(1),
        };
        // 1 Mbit over 1 Mbps = 1 s (+1 ms propagation); the paper's "about
        // 1 ms for 1M data over a 1Mbps link" refers to 1 KB-scale tuples.
        assert_eq!(
            l.transfer_time(125_000),
            Micros::from_secs(1) + Micros::from_millis(1)
        );
        // a 100-byte tuple: 800 us tx + 1 ms
        assert_eq!(l.transfer_time(100), Micros(800) + Micros::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_panics() {
        let _ = TopologyBuilder::with_nodes(2)
            .link(0, 5, LinkSpec::default())
            .build();
    }

    #[test]
    fn builder_settings_apply() {
        let t = Topology::ring(3)
            .bandwidth_bps(5_000_000)
            .propagation(Micros(500))
            .build();
        let l = t.link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(l.bandwidth_bps, 5_000_000);
        assert_eq!(l.propagation, Micros(500));
    }
}
