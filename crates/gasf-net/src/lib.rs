//! # gasf-net — network substrate
//!
//! The paper's prototype disseminates filtered streams with Solar's
//! application-level multicast, built on a Pastry/Scribe-style DHT overlay
//! (§4.1.1), deployed on a small Emulab network with 1–5 Mbps links
//! (§4.1.2). This crate provides the equivalent substrate as a
//! deterministic simulator:
//!
//! * [`Topology`] — an undirected graph of nodes and links with bandwidth
//!   and propagation delay (ring/star/line/grid/random builders),
//! * [`Overlay`] — a DHT ring with Scribe-like rendezvous multicast trees,
//! * [`Overlay::multicast`] — **tuple-level** multicast: every message may
//!   target a different subset of the group, and each message traverses
//!   any link at most once (the property group-aware filtering exploits,
//!   Fig. 1.2),
//! * per-link byte accounting and end-to-end latency modelling
//!   (store-and-forward: software delay per overlay hop + transmission +
//!   propagation per link), calibrated so a small overlay shows the
//!   ~130 ms software-dominated multicast delay the paper measured,
//! * [`ShardedGroup`] — **shard-aware** multicast for sources whose
//!   filtering runs on a sharded engine: one independent rendezvous tree
//!   per producer shard over the same membership, selected
//!   deterministically per tuple, so parallel shards do not serialise
//!   through a single root,
//! * **node-failure semantics with Scribe self-repair** —
//!   [`Overlay::fail_node`] / [`Overlay::recover_node`]: children of a
//!   failed interior tree node re-graft toward the rendezvous root, root
//!   failures hand key ownership to the live ring successor, surviving
//!   members keep receiving, and the repair control cost is accounted
//!   ([`RepairReport`], [`Delivery::repair_bytes`]).
//!
//! * [`Transport`] — the transport seam: the overlay send path behind an
//!   object-safe trait, so the same middleware drains emissions into the
//!   analytic simulator here or a real length-prefixed TCP wire (the
//!   `gasf-wire` crate) without touching engine or middleware code.
//!
//! The paper explicitly scopes out network dynamics (§1.2), so the
//! simulator is analytic (no queuing/congestion model) — delays and byte
//! counts are deterministic functions of topology and message size.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod multicast;
pub mod topology;
pub mod transport;

pub use multicast::{
    Delivery, GroupId, NetError, Overlay, OverlayConfig, RepairReport, ShardedGroup,
};
pub use topology::{LinkSpec, NodeId, Topology, TopologyBuilder};
pub use transport::{LinkLoad, NullTransport, Transport};
