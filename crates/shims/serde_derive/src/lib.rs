//! Offline stand-in for `serde_derive`.
//!
//! The derives emit marker impls (`impl serde::Serialize for T {}`) so that
//! `#[derive(Serialize, Deserialize)]` keeps compiling without a registry.
//! The macros support plain (non-generic) structs and enums, which covers
//! every derived type in this workspace; a generic target is a compile
//! error so silent breakage is impossible.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first top-level `struct`/`enum`
/// keyword. Attribute contents are grouped tokens, so they cannot be
/// mistaken for the keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                for next in iter.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde shim derive: expected a struct or enum");
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid marker impl")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid marker impl")
}
