//! Offline stand-in for `proptest`.
//!
//! Implements the surface the GASF property tests use — the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), [`Strategy`] with `prop_map`,
//! range and tuple strategies, `collection::{vec, btree_set}` and the
//! `prop_assert!`/`prop_assert_eq!` macros — as a deterministic
//! random-testing harness. Each test function draws its cases from an RNG
//! seeded by the test's module path, so failures reproduce across runs.
//! Shrinking is not implemented; the failing case's values are reported by
//! the assertion message instead. The real crate can be swapped back in
//! via the workspace manifest without touching the tests.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure value produced by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator backing the harness — the workspace `rand`
/// shim's xoshiro256++, seeded from a hash of the test name so there is a
/// single RNG implementation across the shims.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Builds the RNG for a named test; equal names give equal streams.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name seeds the shared generator.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` targeting `size` distinct elements drawn from
    /// `element`. If the element universe is smaller than the drawn size,
    /// the set holds as many distinct values as could be found (never
    /// fewer than one for non-empty size ranges).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone()).max(1);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64).max(256) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Declares property-test functions: each `name(arg in strategy, ...)` is
/// expanded into a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = (0u64..12).generate(&mut rng);
            assert!(v < 12);
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let xs = collection::vec(-12i32..12, 3..6).generate(&mut rng);
            assert!((3..6).contains(&xs.len()));
            let set = collection::btree_set(0u64..12, 1..5).generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 5);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let a = collection::vec(0u64..100, 5..6).generate(&mut crate::TestRng::for_test("x"));
        let b = collection::vec(0u64..100, 5..6).generate(&mut crate::TestRng::for_test("x"));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(xs in collection::vec(0u64..50, 1..8), k in 1usize..4) {
            prop_assert!(!xs.is_empty());
            prop_assert!(k < 4, "k was {k}");
            let distinct: std::collections::BTreeSet<u64> = xs.iter().copied().collect();
            prop_assert!(distinct.len() <= xs.len());
        }
    }
}
