//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace-local
//! shim provides the exact surface the GASF crates use: the `Serialize` /
//! `Deserialize` trait names (as capability markers) and the matching
//! derive macros. No wire format is implemented — serialisation backends
//! are out of scope for the reproduction, and `gasf-bench` renders its own
//! JSON. Replacing this shim with the real crate is a one-line change in
//! the workspace manifest; the derives are intentionally API-compatible.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// Deriving it records that a type is serialisation-ready; the shim
/// defines no methods because no serialisation backend exists offline.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
