//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface the
//! `gasf-bench` targets use (`Criterion`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `criterion_main!`). Each benchmark
//! warms up, then measures for the configured window and prints one human
//! line plus one machine line:
//!
//! ```text
//! bench hitting_set/10x8 ... 12345 ns/iter (240 iters)
//! CRITERION-JSON {"id":"hitting_set/10x8","mean_ns":12345.6,"iters":240}
//! ```
//!
//! The `CRITERION-JSON` lines are what `BENCH_baseline.json` is assembled
//! from; statistical analysis (outliers, regressions) is left to the real
//! crate, which can be swapped back in via the workspace manifest.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark-harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = self.run(&mut f);
        report.print(&id.into());
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, f: &mut F) -> Report {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_iters: self.sample_size as u64,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        Report {
            iters: bencher.iters,
            elapsed: bencher.elapsed,
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut runner = |b: &mut Bencher| f(b, input);
        let report = self.criterion.run(&mut runner);
        report.print(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = self.criterion.run(&mut f);
        report.print(&format!("{}/{}", self.name, id.into().0));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId(s.into())
    }
}

/// Timing driver handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Warms up, then runs `f` repeatedly for the measurement window
    /// (at least `sample_size` iterations), recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.min_iters || start.elapsed() < self.measurement {
            black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

struct Report {
    iters: u64,
    elapsed: Duration,
}

impl Report {
    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }

    fn print(&self, id: &str) {
        let mean = self.mean_ns();
        println!("bench {id} ... {mean:.0} ns/iter ({} iters)", self.iters);
        println!(
            "CRITERION-JSON {{\"id\":\"{id}\",\"mean_ns\":{mean:.1},\"iters\":{}}}",
            self.iters
        );
    }
}

/// Declares `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Declares a benchmark group function driving the given targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
