//! Offline stand-in for `rand`.
//!
//! Implements the surface the GASF sources and experiment harness use —
//! `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` — on top of a
//! deterministic xoshiro256++ generator seeded through SplitMix64. All
//! trace generation in this workspace is seeded for reproducibility, so
//! statistical quality beyond "well mixed and deterministic" is not
//! required; the real crate can be swapped back in via the workspace
//! manifest without touching call sites.

#![forbid(unsafe_code)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value of type `T` from a range.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires a non-empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.next_f64() < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(1.5..4.0);
            assert!((1.5..4.0).contains(&f));
            let i: u32 = rng.gen_range(3..9);
            assert!((3..9).contains(&i));
            let s: i32 = rng.gen_range(-12..12);
            assert!((-12..12).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
