//! Offline stand-in for `rand_distr`: the `Normal` distribution sampled
//! with the Box-Muller transform, which is all the GASF synthetic sources
//! need. Deterministic given the (always-seeded) generator.

#![forbid(unsafe_code)]

use rand::RngCore;
use std::fmt;

/// Sampling from a parameterised distribution.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    /// Rejects non-finite parameters and negative standard deviations.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u1 is kept away from 0 so ln() stays finite.
        let u1 = (rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let n = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }
}
