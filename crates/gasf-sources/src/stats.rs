//! Source statistics.
//!
//! §4.3: "we computed the average changes, `srcStatistics`, of two
//! consecutive tuples in the source time series and then randomly picked
//! delta values between the range of srcStatistics and 3·srcStatistics".
//! [`SourceStats::mean_abs_delta`] is exactly that quantity.

use serde::{Deserialize, Serialize};

/// Summary statistics of one attribute's time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceStats {
    /// Number of values observed.
    pub count: usize,
    /// Mean absolute change between consecutive values — the paper's
    /// `srcStatistics` (called ASC, *Average State Change*, in §5.4).
    pub mean_abs_delta: f64,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl SourceStats {
    /// Computes statistics from a value stream.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> SourceStats {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut prev: Option<f64> = None;
        let mut delta_sum = 0.0;
        let mut delta_count = 0usize;
        for v in values {
            count += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
            if let Some(p) = prev {
                delta_sum += (v - p).abs();
                delta_count += 1;
            }
            prev = Some(v);
        }
        SourceStats {
            count,
            mean_abs_delta: if delta_count == 0 {
                0.0
            } else {
                delta_sum / delta_count as f64
            },
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
        }
    }

    /// The value range (`max - min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = SourceStats::from_values([1.0, 3.0, 2.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.range() - 2.0).abs() < 1e-12);
        // |3-1| = 2, |2-3| = 1 -> mean 1.5
        assert!((s.mean_abs_delta - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let e = SourceStats::from_values(std::iter::empty());
        assert_eq!(e.count, 0);
        assert_eq!(e.mean_abs_delta, 0.0);
        assert_eq!(e.mean, 0.0);
        let s = SourceStats::from_values([5.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_abs_delta, 0.0);
        assert_eq!(s.mean, 5.0);
    }
}
