//! File/trace replay connectors: the `gasf-sources` side of the
//! connector seam.
//!
//! [`SourceConnector`](gasf_core::connector::SourceConnector) abstracts
//! where stream input comes from; this module implements the replay
//! family:
//!
//! * [`TraceReplay`] — replays an in-memory [`Trace`] as columnar
//!   [`Chunk::Batch`]es, honouring the driver's `max_rows` and an
//!   optional *ragged* chunk-size pattern (real sources do not deliver
//!   neat fixed-size runs; the round-trip proptests sweep this),
//! * `TraceReplay::`[`from_csv_file`](TraceReplay::from_csv_file) — the
//!   file-replay connector: a CSV trace on disk becomes the stream,
//! * [`ArrivalReplay`] — replays a *disordered arrival sequence* (see
//!   [`Disorder`](crate::Disorder)) as row-form [`Chunk::Rows`], which
//!   the ingest driver routes through the event-time front end,
//! * [`CsvSink`] — the egress twin: a
//!   [`SinkConnector`](gasf_core::connector::SinkConnector) appending
//!   delivered emissions to any [`io::Write`] as self-describing CSV.
//!
//! Replay is deterministic: the same trace and the same chunk pattern
//! produce the same chunk sequence, which is what lets
//! `tests/connector_roundtrip.rs` pin connector-fed runs against
//! [`Middleware::run_trace`]-fed runs byte for byte.
//!
//! [`Middleware::run_trace`]: ../gasf_solar/struct.Middleware.html#method.run_trace

use crate::trace::Trace;
use gasf_core::batch::TupleBatch;
use gasf_core::connector::{Chunk, SinkConnector, SourceConnector};
use gasf_core::engine::Emission;
use gasf_core::error::Error;
use gasf_core::schema::Schema;
use gasf_core::tuple::Tuple;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Replays an ordered trace as columnar batches.
///
/// ```rust
/// use gasf_core::connector::SourceConnector;
/// use gasf_sources::{NamosBuoy, TraceReplay};
///
/// let trace = NamosBuoy::new().tuples(100).seed(7).generate();
/// let mut replay = TraceReplay::new(trace).chunk_sizes([3, 1, 8]);
/// let mut rows = 0;
/// while let Some(chunk) = replay.next_chunk(64).unwrap() {
///     rows += chunk.rows();
/// }
/// assert_eq!(rows, 100);
/// ```
#[derive(Debug, Clone)]
pub struct TraceReplay {
    schema: Schema,
    tuples: Vec<Tuple>,
    at: usize,
    /// Cycled chunk sizes (empty ⇒ always fill to `max_rows`). Each
    /// entry is additionally clamped by the driver's `max_rows` and the
    /// remaining rows, and to at least 1.
    pattern: Vec<usize>,
    pattern_at: usize,
}

impl TraceReplay {
    /// A connector replaying `trace` from the beginning.
    pub fn new(trace: Trace) -> Self {
        let schema = trace.schema().clone();
        TraceReplay {
            schema,
            tuples: trace.into_tuples(),
            at: 0,
            pattern: Vec::new(),
            pattern_at: 0,
        }
    }

    /// The file-replay connector: parses a CSV trace (the
    /// [`csv`](crate::csv) format) from disk and replays it.
    ///
    /// # Errors
    /// [`Error::Connector`] describing the I/O or parse failure.
    pub fn from_csv_file(path: impl AsRef<Path>) -> Result<Self, Error> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| Error::Connector {
            reason: format!("read {}: {e}", path.display()),
        })?;
        let trace = crate::csv::from_csv(&text).map_err(|e| Error::Connector {
            reason: format!("parse {}: {e}", path.display()),
        })?;
        Ok(TraceReplay::new(trace))
    }

    /// Imposes a ragged chunk-size pattern, cycled for the whole replay.
    /// Zero entries count as 1; an empty pattern restores "fill to
    /// `max_rows`".
    pub fn chunk_sizes(mut self, pattern: impl IntoIterator<Item = usize>) -> Self {
        self.pattern = pattern.into_iter().collect();
        self.pattern_at = 0;
        self
    }

    /// Rows not yet handed out.
    pub fn remaining(&self) -> usize {
        self.tuples.len() - self.at
    }
}

impl SourceConnector for TraceReplay {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Chunk>, Error> {
        if self.at == self.tuples.len() {
            return Ok(None);
        }
        let mut n = max_rows.max(1);
        if !self.pattern.is_empty() {
            let want = self.pattern[self.pattern_at % self.pattern.len()].max(1);
            self.pattern_at += 1;
            n = n.min(want);
        }
        n = n.min(self.tuples.len() - self.at);
        let batch = TupleBatch::from_tuples(&self.schema, &self.tuples[self.at..self.at + n])?;
        self.at += n;
        Ok(Some(Chunk::Batch(batch)))
    }
}

/// Replays a disordered *arrival* sequence as row-form chunks.
///
/// Arrival sequences (e.g. from [`Disorder::apply`](crate::Disorder))
/// violate the columnar-batch invariants by construction, so this
/// connector hands over [`Chunk::Rows`] and relies on the driver to
/// route them through the event-time reorder buffer.
#[derive(Debug, Clone)]
pub struct ArrivalReplay {
    schema: Schema,
    arrivals: Vec<Tuple>,
    at: usize,
    pattern: Vec<usize>,
    pattern_at: usize,
}

impl ArrivalReplay {
    /// A connector replaying `arrivals` (any order) under `schema`.
    pub fn new(schema: Schema, arrivals: Vec<Tuple>) -> Self {
        ArrivalReplay {
            schema,
            arrivals,
            at: 0,
            pattern: Vec::new(),
            pattern_at: 0,
        }
    }

    /// Imposes a ragged chunk-size pattern (see
    /// [`TraceReplay::chunk_sizes`]).
    pub fn chunk_sizes(mut self, pattern: impl IntoIterator<Item = usize>) -> Self {
        self.pattern = pattern.into_iter().collect();
        self.pattern_at = 0;
        self
    }
}

impl SourceConnector for ArrivalReplay {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Chunk>, Error> {
        if self.at == self.arrivals.len() {
            return Ok(None);
        }
        let mut n = max_rows.max(1);
        if !self.pattern.is_empty() {
            let want = self.pattern[self.pattern_at % self.pattern.len()].max(1);
            self.pattern_at += 1;
            n = n.min(want);
        }
        n = n.min(self.arrivals.len() - self.at);
        let rows = self.arrivals[self.at..self.at + n].to_vec();
        self.at += n;
        Ok(Some(Chunk::Rows(rows)))
    }
}

/// Appends delivered emissions to a writer as self-describing CSV:
///
/// ```text
/// kind,emitted_at_us,seq,timestamp_us,recipients,<attr…>
/// emit,40000,3,40000,0;2,12.5,19.1
/// patch,45000,2,30000,1,12.4,19.0
/// ```
///
/// `recipients` is the emission's filter-id set joined with `;`. The
/// writer is only flushed by [`end`](SinkConnector::end) (or
/// explicitly), so a file sink batches naturally.
#[derive(Debug)]
pub struct CsvSink<W> {
    out: W,
    wrote_header: bool,
    schema: Schema,
    line: String,
}

impl<W: io::Write> CsvSink<W> {
    /// A sink writing emissions of `schema` to `out`.
    pub fn new(schema: Schema, out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
            schema,
            line: String::new(),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_row(&mut self, kind: &str, emission: &Emission) -> Result<(), Error> {
        let io_err = |e: io::Error| Error::Connector {
            reason: format!("csv sink write: {e}"),
        };
        if !self.wrote_header {
            self.line.clear();
            self.line
                .push_str("kind,emitted_at_us,seq,timestamp_us,recipients");
            for (_, name) in self.schema.iter() {
                self.line.push(',');
                self.line.push_str(name);
            }
            self.line.push('\n');
            self.out.write_all(self.line.as_bytes()).map_err(io_err)?;
            self.wrote_header = true;
        }
        self.line.clear();
        let t = &emission.tuple;
        let _ = write!(
            self.line,
            "{kind},{},{},{},",
            emission.emitted_at.as_micros(),
            t.seq(),
            t.timestamp().as_micros()
        );
        let mut first = true;
        for f in emission.recipients.iter() {
            if !first {
                self.line.push(';');
            }
            let _ = write!(self.line, "{}", f.index());
            first = false;
        }
        for v in t.values() {
            self.line.push(',');
            if !v.is_nan() {
                let _ = write!(self.line, "{v}");
            }
        }
        self.line.push('\n');
        self.out.write_all(self.line.as_bytes()).map_err(io_err)
    }
}

impl<W: io::Write> SinkConnector for CsvSink<W> {
    fn deliver(&mut self, emission: &Emission) -> Result<(), Error> {
        self.write_row("emit", emission)
    }

    fn deliver_patch(&mut self, emission: &Emission) -> Result<(), Error> {
        self.write_row("patch", emission)
    }

    fn end(&mut self) -> Result<(), Error> {
        self.out.flush().map_err(|e| Error::Connector {
            reason: format!("csv sink flush: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Disorder, NamosBuoy};
    use gasf_core::bitset::FilterSet;
    use gasf_core::candidate::FilterId;
    use gasf_core::time::Micros;
    use std::sync::Arc;

    #[test]
    fn trace_replay_is_lossless_and_ordered() {
        let trace = NamosBuoy::new().tuples(57).seed(5).generate();
        let mut replay = TraceReplay::new(trace.clone()).chunk_sizes([5, 2, 9, 1]);
        assert_eq!(replay.remaining(), 57);
        let mut rebuilt = Vec::new();
        let mut sizes = Vec::new();
        while let Some(chunk) = replay.next_chunk(6).unwrap() {
            sizes.push(chunk.rows());
            match chunk {
                Chunk::Batch(b) => rebuilt.extend(b.materialize()),
                Chunk::Rows(_) => panic!("trace replay is columnar"),
            }
        }
        assert_eq!(rebuilt, trace.tuples());
        // pattern entries clamp to the driver's max_rows (9 → 6)
        assert!(sizes.iter().all(|&s| s <= 6));
        assert!(sizes.contains(&5) && sizes.contains(&2) && sizes.contains(&1));
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn file_replay_round_trips_through_disk() {
        let trace = NamosBuoy::new().tuples(20).seed(9).generate();
        let dir = std::env::temp_dir().join("gasf-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, crate::csv::to_csv(&trace)).unwrap();
        let mut replay = TraceReplay::from_csv_file(&path).unwrap();
        let mut rows = 0;
        while let Some(chunk) = replay.next_chunk(7).unwrap() {
            rows += chunk.rows();
        }
        assert_eq!(rows, 20);
        assert!(TraceReplay::from_csv_file(dir.join("missing.csv")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arrival_replay_preserves_arrival_order() {
        let trace = NamosBuoy::new().tuples(40).seed(2).generate();
        let arrivals = Disorder::bounded(Micros::from_millis(120))
            .seed(4)
            .apply(&trace);
        let mut replay =
            ArrivalReplay::new(trace.schema().clone(), arrivals.clone()).chunk_sizes([3]);
        let mut rebuilt = Vec::new();
        while let Some(chunk) = replay.next_chunk(64).unwrap() {
            match chunk {
                Chunk::Rows(r) => rebuilt.extend(r),
                Chunk::Batch(_) => panic!("arrival replay is row-form"),
            }
        }
        assert_eq!(rebuilt, arrivals);
    }

    #[test]
    fn csv_sink_writes_header_rows_and_patches() {
        let schema = Schema::new(["a", "b"]);
        let mut b = gasf_core::tuple::TupleBuilder::new(&schema);
        let t = b.at_millis(10).set("a", 1.5).set("b", 2.0).build().unwrap();
        let mut recipients = FilterSet::new();
        recipients.insert(FilterId::from_index(0));
        recipients.insert(FilterId::from_index(2));
        let emission = Emission {
            tuple: Arc::new(t),
            recipients,
            emitted_at: Micros::from_millis(11),
        };
        let mut sink = CsvSink::new(schema, Vec::new());
        sink.deliver(&emission).unwrap();
        sink.deliver_patch(&emission).unwrap();
        sink.end().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "kind,emitted_at_us,seq,timestamp_us,recipients,a,b"
        );
        assert_eq!(lines[1], "emit,11000,0,10000,0;2,1.5,2");
        assert_eq!(lines[2], "patch,11000,0,10000,0;2,1.5,2");
    }
}
