//! Fire-experiment HRR(Q) generator (§4.7.4, Fig. 4.23).
//!
//! The WPI fire-study trace plots heat release rate over an experiment:
//! near zero at ignition, a smooth t²-law growth to a ~3.5 peak, a
//! quasi-steady burning phase and a decay — with small measurement noise.
//! This "relatively smooth curve" is what made group-aware filtering save
//! the most bandwidth (60 % of SI) in the paper's comparison.
//!
//! ## Knobs
//!
//! * [`FireHrr::tuples`] — trace length (the growth/steady/decay phases
//!   stretch with it, so the curve shape is length-invariant),
//! * [`FireHrr::interval`] — inter-tuple spacing,
//! * [`FireHrr::peak`] — peak heat-release rate (default ≈ 3.5, the
//!   figure's scale),
//! * [`FireHrr::seed`] — measurement-noise seed (deterministic replay).

use crate::trace::Trace;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Generator for synthetic heat-release-rate traces.
#[derive(Debug, Clone)]
pub struct FireHrr {
    tuples: usize,
    interval: Micros,
    seed: u64,
    peak: f64,
}

impl FireHrr {
    /// A generator with defaults matching Fig. 4.23's scale (peak ≈ 3.5).
    pub fn new() -> Self {
        FireHrr {
            tuples: 10_000,
            interval: Micros::from_millis(10),
            seed: 0,
            peak: 3.5,
        }
    }

    /// Sets the number of tuples to generate.
    pub fn tuples(mut self, n: usize) -> Self {
        self.tuples = n;
        self
    }

    /// Sets the inter-arrival interval.
    pub fn interval(mut self, interval: Micros) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the peak heat release rate.
    pub fn peak(mut self, peak: f64) -> Self {
        self.peak = peak;
        self
    }

    /// The schema: a single `hrr` attribute.
    pub fn schema() -> Schema {
        Schema::new(["hrr"])
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let schema = Self::schema();
        let attr = schema.attr("hrr").expect("schema has hrr");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xf17e_0000_1234_5678);
        // HRR is a derived, low-noise quantity: model the measurement
        // deviation as a slowly wandering AR(1) offset, not white noise —
        // the published curve is visibly smooth (Fig. 4.23).
        let noise = Normal::new(0.0, 0.004).expect("valid normal");
        let mut offset = 0.0f64;

        // Phase boundaries as fractions of the experiment duration:
        // ignition lag 10 %, growth 30 %, steady 30 %, decay 30 %.
        let n = self.tuples.max(1) as f64;
        let mut b = TupleBuilder::new(&schema);
        let mut tuples = Vec::with_capacity(self.tuples);
        for i in 0..self.tuples {
            let frac = i as f64 / n;
            let shape = if frac < 0.1 {
                0.0
            } else if frac < 0.4 {
                // t² growth law
                let g = (frac - 0.1) / 0.3;
                g * g
            } else if frac < 0.7 {
                1.0
            } else {
                // exponential-ish decay
                let d = (frac - 0.7) / 0.3;
                (1.0 - d).max(0.0).powf(1.5)
            };
            offset = 0.97 * offset + noise.sample(&mut rng);
            let v = (self.peak * shape + offset).max(0.0);
            let ts = Micros(self.interval.as_micros() * (i as u64 + 1));
            tuples.push(
                b.at(ts)
                    .set_attr(attr, v)
                    .build()
                    .expect("schema-aligned tuple"),
            );
        }
        Trace::new(schema, tuples).expect("generated stream is ordered")
    }

    /// Generates the trace plus the **arrival** sequence a filtering node
    /// would see under `disorder` (bounded shuffle, jitter, stragglers).
    /// The trace stays event-time-ordered — it is the reorder oracle.
    pub fn generate_arrivals(
        &self,
        disorder: crate::Disorder,
    ) -> (Trace, Vec<gasf_core::tuple::Tuple>) {
        let trace = self.generate();
        let arrivals = disorder.apply(&trace);
        (trace, arrivals)
    }
}

impl Default for FireHrr {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let a = FireHrr::new().tuples(3_000).seed(8).generate();
        let b = FireHrr::new().tuples(3_000).seed(8).generate();
        assert_eq!(a, b);
        let s = a.stats("hrr").unwrap();
        assert!(s.min >= 0.0);
        assert!(s.max > 3.0 && s.max < 4.0, "peak ~3.5: {s:?}");
    }

    #[test]
    fn growth_then_steady_then_decay() {
        let t = FireHrr::new().tuples(1_000).seed(8).generate();
        let series = t.series_of("hrr").unwrap();
        let at = |frac: f64| series[(frac * 999.0) as usize].1;
        assert!(at(0.05) < 0.2, "pre-ignition near zero");
        assert!(at(0.55) > 3.0, "steady phase near peak");
        assert!(at(0.99) < 0.5, "decayed at the end");
        assert!(at(0.25) > at(0.15), "monotone growth phase");
    }

    #[test]
    fn custom_peak() {
        let t = FireHrr::new().tuples(1_000).peak(7.0).generate();
        assert!(t.stats("hrr").unwrap().max > 6.0);
    }
}
