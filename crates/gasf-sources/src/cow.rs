//! Cow-orientation generator (§4.7.4, Fig. 4.21).
//!
//! The MIT bio-monitoring trace shows a cow's east-orientation: long flat
//! stretches around ~813 units with *clustered brief changes* when the
//! animal moves. We model it as a two-state (resting/active) Markov chain:
//! resting emits tiny jitter, active emits a burst of larger steps, with
//! the orientation clamped to the observed 810–817 band.
//!
//! ## Knobs
//!
//! * [`CowOrientation::tuples`] — trace length,
//! * [`CowOrientation::interval`] — inter-tuple spacing,
//! * [`CowOrientation::seed`] — RNG seed (deterministic replay).
//!
//! The burstiness is what this source is *for*: long flat stretches give
//! delta filters nothing to emit, then activity clusters stress the
//! timely-cut machinery (Fig. 4.21's discussion).

use crate::trace::Trace;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Generator for synthetic cow-orientation traces.
#[derive(Debug, Clone)]
pub struct CowOrientation {
    tuples: usize,
    interval: Micros,
    seed: u64,
}

impl CowOrientation {
    /// A generator with defaults matching Fig. 4.21's scale.
    pub fn new() -> Self {
        CowOrientation {
            tuples: 10_000,
            interval: Micros::from_millis(10),
            seed: 0,
        }
    }

    /// Sets the number of tuples to generate.
    pub fn tuples(mut self, n: usize) -> Self {
        self.tuples = n;
        self
    }

    /// Sets the inter-arrival interval.
    pub fn interval(mut self, interval: Micros) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The schema: a single `e_orient` attribute.
    pub fn schema() -> Schema {
        Schema::new(["e_orient"])
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let schema = Self::schema();
        let attr = schema.attr("e_orient").expect("schema has e_orient");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc0c0_0000_b0b0_1111);
        let rest_noise = Normal::new(0.0, 0.02).expect("valid normal");
        let burst_step = Normal::new(0.0, 0.9).expect("valid normal");

        let mut value: f64 = 813.0;
        let mut active = false;
        let mut b = TupleBuilder::new(&schema);
        let mut tuples = Vec::with_capacity(self.tuples);
        for i in 0..self.tuples {
            // State transitions: rare activation, bursts last ~20 samples.
            if active {
                if rng.gen_bool(0.05) {
                    active = false;
                }
            } else if rng.gen_bool(0.004) {
                active = true;
            }
            let step = if active {
                burst_step.sample(&mut rng)
            } else {
                rest_noise.sample(&mut rng)
            };
            value = (value + step).clamp(810.0, 817.0);
            let ts = Micros(self.interval.as_micros() * (i as u64 + 1));
            tuples.push(
                b.at(ts)
                    .set_attr(attr, value)
                    .build()
                    .expect("schema-aligned tuple"),
            );
        }
        Trace::new(schema, tuples).expect("generated stream is ordered")
    }

    /// Generates the trace plus the **arrival** sequence a filtering node
    /// would see under `disorder` (bounded shuffle, jitter, stragglers).
    /// The trace stays event-time-ordered — it is the reorder oracle.
    pub fn generate_arrivals(
        &self,
        disorder: crate::Disorder,
    ) -> (Trace, Vec<gasf_core::tuple::Tuple>) {
        let trace = self.generate();
        let arrivals = disorder.apply(&trace);
        (trace, arrivals)
    }
}

impl Default for CowOrientation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let a = CowOrientation::new().tuples(2_000).seed(1).generate();
        let b = CowOrientation::new().tuples(2_000).seed(1).generate();
        assert_eq!(a, b);
        let s = a.stats("e_orient").unwrap();
        assert!(s.min >= 810.0 && s.max <= 817.0, "{s:?}");
    }

    #[test]
    fn changes_are_clustered() {
        // The hallmark of Fig. 4.21: most consecutive deltas are tiny, but
        // bursts produce occasional large ones.
        let t = CowOrientation::new().tuples(20_000).seed(2).generate();
        let series = t.series_of("e_orient").unwrap();
        let deltas: Vec<f64> = series.windows(2).map(|w| (w[1].1 - w[0].1).abs()).collect();
        let quiet = deltas.iter().filter(|&&d| d < 0.1).count() as f64 / deltas.len() as f64;
        let loud = deltas.iter().filter(|&&d| d > 0.5).count();
        assert!(quiet > 0.7, "quiet fraction {quiet}");
        assert!(loud > 10, "bursts must exist, got {loud}");
    }
}
