//! In-memory traces: a schema plus time-ordered tuples.
//!
//! [`Trace`] is the unit every generator produces and every experiment
//! consumes — an immutable, schema-aligned, strictly time-ordered tuple
//! sequence. Beyond iteration it provides the derivations the paper's
//! methodology needs:
//!
//! * [`Trace::stats`] — per-attribute [`SourceStats`], the
//!   `srcStatistics` quantity filter deltas are calibrated from (§4.3),
//! * [`Trace::series_of`] — a `(timestamp, value)` series for an
//!   attribute, used to derive trend (DC2) statistics,
//! * [`Trace::truncate`] / [`Trace::mean_interval`] — workload sizing
//!   helpers for the bench harness.
//!
//! Construction validates ordering ([`Trace::new`] rejects decreasing
//! timestamps or non-contiguous sequence numbers; equal timestamps are
//! legal, with the dense seq range as the tiebreak), so a `Trace` can
//! always be replayed through an engine without ordering errors. For the
//! event-time path, [`Disorder`](crate::Disorder) turns an ordered trace
//! into a jittered *arrival* sequence without touching the trace itself.

use crate::stats::SourceStats;
use gasf_core::batch::TupleBatch;
use gasf_core::error::Error;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;

/// A finite recorded stream: the unit the experiment harness replays.
///
/// Invariants (enforced at construction): timestamps are non-decreasing
/// and sequence numbers dense (strictly increasing by one), matching what
/// [`GroupEngine::push`](gasf_core::engine::GroupEngine::push) requires.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Trace {
    /// Wraps tuples into a trace, validating stream order.
    ///
    /// # Errors
    /// Returns [`Error::OutOfOrder`] / [`Error::NonContiguousSeq`] if the
    /// tuples violate the stream invariants.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self, Error> {
        for pair in tuples.windows(2) {
            if pair[1].timestamp() < pair[0].timestamp() {
                return Err(Error::OutOfOrder {
                    last_us: pair[0].timestamp().as_micros(),
                    got_us: pair[1].timestamp().as_micros(),
                });
            }
            if pair[1].seq() != pair[0].seq() + 1 {
                return Err(Error::NonContiguousSeq {
                    expected: pair[0].seq() + 1,
                    got: pair[1].seq(),
                });
            }
        }
        Ok(Trace { schema, tuples })
    }

    /// The trace's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples, in stream order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Consumes the trace, yielding its tuples (what engines ingest).
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Source statistics for one attribute — `mean_abs_delta` is the
    /// paper's `srcStatistics` (average change between consecutive tuples).
    ///
    /// # Errors
    /// Returns [`Error::UnknownAttribute`] for names outside the schema.
    pub fn stats(&self, attr: &str) -> Result<SourceStats, Error> {
        let id = self.schema.attr(attr)?;
        Ok(SourceStats::from_values(
            self.tuples.iter().filter_map(|t| t.get(id)),
        ))
    }

    /// A sub-trace of the first `n` tuples (re-sequenced from 0).
    pub fn truncate(&self, n: usize) -> Trace {
        let tuples = self.tuples[..n.min(self.tuples.len())]
            .iter()
            .enumerate()
            .map(|(i, t)| t.with_seq(i as u64))
            .collect();
        Trace {
            schema: self.schema.clone(),
            tuples,
        }
    }

    /// Mean inter-arrival time of the trace.
    pub fn mean_interval(&self) -> Micros {
        if self.tuples.len() < 2 {
            return Micros::ZERO;
        }
        let span = self
            .tuples
            .last()
            .expect("non-empty")
            .timestamp()
            .saturating_sub(self.tuples[0].timestamp());
        Micros(span.as_micros() / (self.tuples.len() as u64 - 1))
    }

    /// Chunks the trace into columnar [`TupleBatch`]es of (at most)
    /// `batch_size` rows each — the native feed for the engines' batch
    /// hot path ([`GroupEngine::push_batch_columnar`]). The last batch
    /// carries the remainder; `batch_size` is clamped to at least 1.
    ///
    /// A trace is stream-ordered by construction, so the conversion
    /// cannot fail.
    ///
    /// [`GroupEngine::push_batch_columnar`]:
    ///     gasf_core::engine::GroupEngine::push_batch_columnar
    pub fn batches(&self, batch_size: usize) -> Vec<TupleBatch> {
        let size = batch_size.max(1);
        self.tuples
            .chunks(size)
            .map(|chunk| {
                TupleBatch::from_tuples(&self.schema, chunk)
                    .expect("trace invariants imply valid batches")
            })
            .collect()
    }

    /// Extracts the time series of one attribute as `(timestamp, value)`
    /// pairs — used by the figure dumps (Figs. 4.21–4.23).
    ///
    /// # Errors
    /// Returns [`Error::UnknownAttribute`] for names outside the schema.
    pub fn series_of(&self, attr: &str) -> Result<Vec<(Micros, f64)>, Error> {
        let id = self.schema.attr(attr)?;
        Ok(self
            .tuples
            .iter()
            .filter_map(|t| t.get(id).map(|v| (t.timestamp(), v)))
            .collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::tuple::series;

    fn mk() -> Trace {
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(0, 1.0), (10, 2.0), (20, 4.0)]);
        Trace::new(schema, tuples).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        let schema = Schema::new(["t"]);
        let mut tuples = series(&schema, "t", &[(0, 1.0), (10, 2.0)]);
        tuples.swap(0, 1);
        assert!(Trace::new(schema, tuples).is_err());
    }

    #[test]
    fn construction_validates_seq_density() {
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(0, 1.0), (10, 2.0)]);
        let gappy = vec![tuples[0].clone(), tuples[1].with_seq(5)];
        assert!(matches!(
            Trace::new(schema, gappy),
            Err(Error::NonContiguousSeq { .. })
        ));
    }

    #[test]
    fn stats_and_series() {
        let t = mk();
        let s = t.stats("t").unwrap();
        assert!((s.mean_abs_delta - 1.5).abs() < 1e-12);
        let series = t.series_of("t").unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].1, 4.0);
        assert!(t.stats("zz").is_err());
    }

    #[test]
    fn truncate_reseqs() {
        let t = mk().truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.tuples()[1].seq(), 1);
        let full = mk().truncate(100);
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn mean_interval() {
        assert_eq!(mk().mean_interval(), Micros::from_millis(10));
        let schema = Schema::new(["t"]);
        let single = Trace::new(schema.clone(), series(&schema, "t", &[(0, 1.0)])).unwrap();
        assert_eq!(single.mean_interval(), Micros::ZERO);
    }

    #[test]
    fn batches_chunk_and_roundtrip() {
        let t = mk();
        let batches = t.batches(2);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].rows(), 2);
        assert_eq!(batches[1].rows(), 1, "last batch takes the remainder");
        let rebuilt: Vec<_> = batches.iter().flat_map(|b| b.materialize()).collect();
        assert_eq!(rebuilt, t.tuples(), "batching is lossless");
        assert_eq!(t.batches(0).len(), 3, "batch size clamps to 1");
        assert_eq!(t.batches(100).len(), 1);
    }

    #[test]
    fn iteration() {
        let t = mk();
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
        assert_eq!(t.clone().into_iter().count(), 3);
        assert!(!t.is_empty());
    }
}
