//! Chlorine-concentration generator (§5.5.1).
//!
//! For the Baton Rouge train-derailment exercise the paper's source was
//! itself simulated "according to a diffusion model that was carefully
//! engineered for this scenario", considering wind direction/speed and
//! sensor density, emitting a reading every 10 ms. We model a fixed sensor
//! downwind of a continuous release using a sequence of Gaussian puffs
//! advected past the sensor: the concentration rises as each puff arrives,
//! falls as it disperses, and puff strength varies with a gusty wind.
//!
//! ## Knobs
//!
//! * [`ChlorinePlume::tuples`] — trace length,
//! * [`ChlorinePlume::interval`] — inter-tuple spacing (default 10 ms,
//!   matching the exercise's rate),
//! * [`ChlorinePlume::wind`] — mean wind speed, which sets how sharply
//!   puffs sweep past the sensor (faster wind → steeper ramps → larger
//!   deltas),
//! * [`ChlorinePlume::seed`] — RNG seed (deterministic replay).
//!
//! The `emergency_response` example drives the full middleware stack with
//! this source.

use crate::trace::Trace;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Generator for synthetic chlorine-plume traces.
#[derive(Debug, Clone)]
pub struct ChlorinePlume {
    tuples: usize,
    interval: Micros,
    seed: u64,
    /// Mean wind speed (m/s) — controls how fast puffs sweep past.
    wind: f64,
}

impl ChlorinePlume {
    /// A generator with scenario defaults (10 ms interval, 3 m/s wind).
    pub fn new() -> Self {
        ChlorinePlume {
            tuples: 10_000,
            interval: Micros::from_millis(10),
            seed: 0,
            wind: 3.0,
        }
    }

    /// Sets the number of tuples to generate.
    pub fn tuples(mut self, n: usize) -> Self {
        self.tuples = n;
        self
    }

    /// Sets the inter-arrival interval.
    pub fn interval(mut self, interval: Micros) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mean wind speed in m/s.
    pub fn wind(mut self, wind: f64) -> Self {
        self.wind = wind.max(0.1);
        self
    }

    /// The schema: `chlorine` (ppm), `wind_speed`, `wind_dir` (degrees).
    pub fn schema() -> Schema {
        Schema::new(["chlorine", "wind_speed", "wind_dir"])
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let schema = Self::schema();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc1_0000_dead_beef);
        let sensor_noise = Normal::new(0.0, 0.01).expect("valid normal");

        // Puff release schedule: a puff every ~2 s of simulated time; each
        // puff contributes a Gaussian concentration profile at the sensor
        // 60 m downwind, with width growing by turbulent diffusion.
        let duration = self.interval.as_secs_f64() * self.tuples as f64;
        let sensor_distance = 60.0;
        let mut puffs: Vec<(f64, f64, f64)> = Vec::new(); // (arrival s, strength, width s)
        let mut t_release = 0.0;
        while t_release < duration + sensor_distance / self.wind {
            let speed = self.wind * rng.gen_range(0.7..1.3);
            let travel = sensor_distance / speed;
            let strength = rng.gen_range(1.5..4.0);
            let width = travel * 0.25 + rng.gen_range(0.5..2.0);
            puffs.push((t_release + travel, strength, width));
            t_release += rng.gen_range(1.0..3.0);
        }

        let mut b = TupleBuilder::new(&schema);
        let mut tuples = Vec::with_capacity(self.tuples);
        let wind_dir_base: f64 = rng.gen_range(0.0..360.0);
        for i in 0..self.tuples {
            let ts = Micros(self.interval.as_micros() * (i as u64 + 1));
            let t = ts.as_secs_f64();
            let mut c = 0.0;
            for &(arrival, strength, width) in &puffs {
                let z = (t - arrival) / width;
                if z.abs() < 6.0 {
                    c += strength * (-0.5 * z * z).exp();
                }
            }
            let c = (c + sensor_noise.sample(&mut rng)).max(0.0);
            let wind_speed = self.wind * (1.0 + 0.2 * (t / 7.0).sin());
            let wind_dir = wind_dir_base + 10.0 * (t / 13.0).sin();
            tuples.push(
                b.at(ts)
                    .set("chlorine", c)
                    .set("wind_speed", wind_speed)
                    .set("wind_dir", wind_dir)
                    .build()
                    .expect("schema-aligned tuple"),
            );
        }
        Trace::new(schema, tuples).expect("generated stream is ordered")
    }

    /// Generates the trace plus the **arrival** sequence a filtering node
    /// would see under `disorder` (bounded shuffle, jitter, stragglers).
    /// The trace stays event-time-ordered — it is the reorder oracle.
    pub fn generate_arrivals(
        &self,
        disorder: crate::Disorder,
    ) -> (Trace, Vec<gasf_core::tuple::Tuple>) {
        let trace = self.generate();
        let arrivals = disorder.apply(&trace);
        (trace, arrivals)
    }
}

impl Default for ChlorinePlume {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_non_negative() {
        let a = ChlorinePlume::new().tuples(4_000).seed(6).generate();
        let b = ChlorinePlume::new().tuples(4_000).seed(6).generate();
        assert_eq!(a, b);
        let s = a.stats("chlorine").unwrap();
        assert!(s.min >= 0.0);
        assert!(s.max > 1.0, "plume must actually arrive: {s:?}");
    }

    #[test]
    fn concentration_rises_and_falls() {
        // With multiple puffs the series must not be monotone.
        let t = ChlorinePlume::new().tuples(8_000).seed(2).generate();
        let series = t.series_of("chlorine").unwrap();
        let rising = series.windows(2).filter(|w| w[1].1 > w[0].1).count();
        let falling = series.windows(2).filter(|w| w[1].1 < w[0].1).count();
        assert!(
            rising > 1000 && falling > 1000,
            "{rising} up / {falling} down"
        );
    }

    #[test]
    fn wind_configurable() {
        let fast = ChlorinePlume::new().tuples(100).wind(10.0).generate();
        let s = fast.stats("wind_speed").unwrap();
        assert!(s.mean > 8.0);
    }
}
