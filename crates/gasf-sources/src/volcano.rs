//! Volcano-seismometer generator (§4.7.4, Fig. 4.22).
//!
//! The Peru deployment's seismic readings oscillate smoothly in a narrow
//! band (±0.004 in the paper's plot) with occasional higher-energy swarms.
//! We superpose a few low-frequency sinusoids with small Gaussian noise,
//! plus exponentially decaying event bursts arriving at random times.
//!
//! ## Knobs
//!
//! * [`VolcanoSeismic::tuples`] — trace length,
//! * [`VolcanoSeismic::interval`] — inter-tuple spacing,
//! * [`VolcanoSeismic::seed`] — RNG seed (deterministic replay; also
//!   varies when and how strongly the event swarms hit).
//!
//! The `multimodal_sensing` example uses this source as the cheap index
//! stream that decides which expensive images to ship (§5.5.2).

use crate::trace::Trace;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Generator for synthetic volcano seismic traces.
#[derive(Debug, Clone)]
pub struct VolcanoSeismic {
    tuples: usize,
    interval: Micros,
    seed: u64,
}

impl VolcanoSeismic {
    /// A generator with defaults matching Fig. 4.22's scale.
    pub fn new() -> Self {
        VolcanoSeismic {
            tuples: 10_000,
            interval: Micros::from_millis(10),
            seed: 0,
        }
    }

    /// Sets the number of tuples to generate.
    pub fn tuples(mut self, n: usize) -> Self {
        self.tuples = n;
        self
    }

    /// Sets the inter-arrival interval.
    pub fn interval(mut self, interval: Micros) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The schema: a single `seis` attribute.
    pub fn schema() -> Schema {
        Schema::new(["seis"])
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let schema = Self::schema();
        let attr = schema.attr("seis").expect("schema has seis");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e15_0000_aaaa_0001);
        let noise = Normal::new(0.0, 0.000_15).expect("valid normal");

        let phases: [f64; 3] = [
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.0..std::f64::consts::TAU),
        ];
        let mut event_energy: f64 = 0.0;
        let mut b = TupleBuilder::new(&schema);
        let mut tuples = Vec::with_capacity(self.tuples);
        for i in 0..self.tuples {
            let ts = Micros(self.interval.as_micros() * (i as u64 + 1));
            let t = ts.as_secs_f64();
            // Background microseism: three harmonics inside ±0.0025.
            let background = 0.0012 * (std::f64::consts::TAU * t / 7.0 + phases[0]).sin()
                + 0.0008 * (std::f64::consts::TAU * t / 2.3 + phases[1]).sin()
                + 0.0005 * (std::f64::consts::TAU * t / 0.9 + phases[2]).sin();
            // Event swarms: rare impulses decaying with a ~0.3 s half-life.
            if rng.gen_bool(0.001) {
                event_energy += rng.gen_range(0.001..0.003);
            }
            event_energy *= 0.98;
            let wobble = if event_energy > 0.0 {
                event_energy * (std::f64::consts::TAU * t * 4.0).sin()
            } else {
                0.0
            };
            let v = background + wobble + noise.sample(&mut rng);
            tuples.push(
                b.at(ts)
                    .set_attr(attr, v)
                    .build()
                    .expect("schema-aligned tuple"),
            );
        }
        Trace::new(schema, tuples).expect("generated stream is ordered")
    }

    /// Generates the trace plus the **arrival** sequence a filtering node
    /// would see under `disorder` (bounded shuffle, jitter, stragglers).
    /// The trace stays event-time-ordered — it is the reorder oracle.
    pub fn generate_arrivals(
        &self,
        disorder: crate::Disorder,
    ) -> (Trace, Vec<gasf_core::tuple::Tuple>) {
        let trace = self.generate();
        let arrivals = disorder.apply(&trace);
        (trace, arrivals)
    }
}

impl Default for VolcanoSeismic {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_band() {
        let a = VolcanoSeismic::new().tuples(5_000).seed(4).generate();
        let b = VolcanoSeismic::new().tuples(5_000).seed(4).generate();
        assert_eq!(a, b);
        let s = a.stats("seis").unwrap();
        // Fig. 4.22's plot spans roughly -0.004..0.005.
        assert!(s.min > -0.01 && s.max < 0.01, "{s:?}");
        assert!(s.range() > 0.001, "oscillation must be visible: {s:?}");
    }

    #[test]
    fn smooth_relative_to_range() {
        // Seismic updates are smooth: consecutive deltas are much smaller
        // than the overall range (unlike the cow's bursts).
        let t = VolcanoSeismic::new().tuples(5_000).seed(4).generate();
        let s = t.stats("seis").unwrap();
        assert!(
            s.mean_abs_delta < s.range() / 4.0,
            "delta {} vs range {}",
            s.mean_abs_delta,
            s.range()
        );
    }
}
