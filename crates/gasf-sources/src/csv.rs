//! CSV trace import/export.
//!
//! The paper's evaluation replays real deployment traces; when you have
//! such a trace (NAMOS buoy logs, seismometer dumps, …) this module lets
//! you run every experiment against it instead of the synthetic
//! generators. The format is deliberately minimal and self-describing:
//!
//! ```text
//! timestamp_us,fluoro,tmpr4
//! 10000,12.01,19.52
//! 20000,12.03,19.53
//! ```
//!
//! The first column is always the source timestamp in microseconds; the
//! remaining header names become the schema. Sequence numbers are assigned
//! densely in file order. Missing values are empty cells.

use crate::trace::Trace;
use gasf_core::error::Error;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use std::fmt::Write as _;

/// Parse failure with a line number for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// 1-based line number in the file (the header is line 1; line 0
    /// marks input-level problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

impl From<Error> for CsvError {
    fn from(e: Error) -> Self {
        CsvError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Serialises a trace to the CSV format above.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("timestamp_us");
    for (_, name) in trace.schema().iter() {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for t in trace.iter() {
        let _ = write!(out, "{}", t.timestamp().as_micros());
        for v in t.values() {
            out.push(',');
            if !v.is_nan() {
                let _ = write!(out, "{v}");
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a trace from the CSV format above.
///
/// # Errors
/// Returns a [`CsvError`] naming the offending line when the header is
/// missing/malformed, a row has the wrong number of cells, a timestamp or
/// value fails to parse, or the stream violates the ordering invariants.
pub fn from_csv(input: &str) -> Result<Trace, CsvError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError {
        line: 0,
        message: "empty input, expected a header row".into(),
    })?;
    let mut cols = header.split(',');
    let first = cols.next().unwrap_or_default().trim();
    if first != "timestamp_us" {
        return Err(CsvError {
            line: 0,
            message: format!("first column must be `timestamp_us`, got `{first}`"),
        });
    }
    let names: Vec<String> = cols.map(|c| c.trim().to_string()).collect();
    if names.is_empty() {
        return Err(CsvError {
            line: 0,
            message: "header declares no attributes".into(),
        });
    }
    let schema = Schema::new(names);

    let mut tuples = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != schema.len() + 1 {
            return Err(CsvError {
                line: line_no,
                message: format!("expected {} cells, got {}", schema.len() + 1, cells.len()),
            });
        }
        let ts: u64 = cells[0].trim().parse().map_err(|e| CsvError {
            line: line_no,
            message: format!("bad timestamp `{}`: {e}", cells[0]),
        })?;
        let mut values = Vec::with_capacity(schema.len());
        for (ci, cell) in cells[1..].iter().enumerate() {
            let cell = cell.trim();
            if cell.is_empty() {
                values.push(f64::NAN);
            } else {
                let col_name = schema
                    .iter()
                    .nth(ci)
                    .map(|(_, n)| n.to_string())
                    .unwrap_or_default();
                values.push(cell.parse().map_err(|e| CsvError {
                    line: line_no,
                    message: format!("bad value `{cell}` for {col_name}: {e}"),
                })?);
            }
        }
        let tuple =
            Tuple::new(&schema, tuples.len() as u64, Micros(ts), values).map_err(|e| CsvError {
                line: line_no,
                message: e.to_string(),
            })?;
        tuples.push(tuple);
    }
    Trace::new(schema, tuples).map_err(CsvError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NamosBuoy;

    #[test]
    fn round_trip() {
        let trace = NamosBuoy::new().tuples(50).seed(3).generate();
        let csv = to_csv(&trace);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), trace.len());
        assert!(back.schema().same_as(trace.schema()));
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.timestamp(), b.timestamp());
            for (x, y) in a.values().iter().zip(b.values()) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn parses_minimal_example() {
        let csv = "timestamp_us,t\n10000,1.5\n20000,2.5\n";
        let trace = from_csv(csv).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.tuples()[1].seq(), 1);
        let s = trace.stats("t").unwrap();
        assert!((s.mean_abs_delta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_values_become_nan() {
        let csv = "timestamp_us,a,b\n10,1.0,\n20,,2.0\n";
        let trace = from_csv(csv).unwrap();
        let a = trace.schema().attr("a").unwrap();
        let b = trace.schema().attr("b").unwrap();
        assert_eq!(trace.tuples()[0].get(b), None);
        assert_eq!(trace.tuples()[1].get(a), None);
        assert_eq!(trace.tuples()[1].get(b), Some(2.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_csv("").is_err());
        assert!(from_csv("time,t\n1,2\n").is_err());
        assert!(from_csv("timestamp_us\n").is_err());
        let wrong_width = from_csv("timestamp_us,t\n10,1.0,9.0\n").unwrap_err();
        assert_eq!(wrong_width.line, 2, "header is line 1");
        let bad_ts = from_csv("timestamp_us,t\nxx,1.0\n").unwrap_err();
        assert!(bad_ts.message.contains("timestamp"));
        let bad_val = from_csv("timestamp_us,t\n10,zz\n").unwrap_err();
        assert!(bad_val.message.contains("zz"));
        // out of order timestamps
        let ooo = from_csv("timestamp_us,t\n20,1.0\n10,2.0\n");
        assert!(ooo.is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "timestamp_us,t\n10,1.0\n\n20,2.0\n";
        assert_eq!(from_csv(csv).unwrap().len(), 2);
    }

    #[test]
    fn error_display() {
        let e = CsvError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "csv line 3: boom");
    }
}
