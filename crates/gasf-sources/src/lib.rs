//! # gasf-sources — data-source substrate
//!
//! The paper evaluates group-aware stream filtering against four real
//! deployments (§4.2, §4.7.4) plus one engineered model (§5.5.1):
//!
//! * **NAMOS buoy** traces (UCLA CENS, Lake Fulmor 2006): ~100 Hz tuples
//!   with a fluorometer reading and six thermistor readings,
//! * a **cow-orientation** trace (MIT bio-monitoring): long flat stretches
//!   with clustered brief changes (Fig. 4.21),
//! * **volcano seismometer** readings (Peru deployment): smooth
//!   low-amplitude oscillation with event swarms (Fig. 4.22),
//! * **fire-experiment HRR(Q)** readings (WPI): a smooth growth/decay
//!   curve (Fig. 4.23), and
//! * a **chlorine-concentration** source driven by a carefully engineered
//!   diffusion model for the Baton Rouge train-derailment exercise.
//!
//! We do not have the original traces, so this crate provides deterministic
//! synthetic generators that match the *shape* characteristics the paper's
//! results depend on (update magnitudes and burstiness), plus
//! [`Trace`]/[`SourceStats`] utilities used to derive filter parameters
//! exactly the way the paper does (delta ∈ \[1,3\]·srcStatistics, slack ≈
//! 50 % of delta). See DESIGN.md for the substitution rationale.
//!
//! ```rust
//! use gasf_sources::{NamosBuoy, SourceStats};
//! let trace = NamosBuoy::new().tuples(1000).seed(7).generate();
//! let stats = trace.stats("tmpr4").unwrap();
//! assert!(stats.mean_abs_delta > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod chlorine;
mod cow;
pub mod csv;
mod disorder;
mod fire;
mod namos;
mod replay;
mod stats;
mod trace;
mod volcano;

pub use chlorine::ChlorinePlume;
pub use cow::CowOrientation;
pub use csv::{from_csv, to_csv, CsvError};
pub use disorder::Disorder;
pub use fire::FireHrr;
pub use namos::NamosBuoy;
pub use replay::{ArrivalReplay, CsvSink, TraceReplay};
pub use stats::SourceStats;
pub use trace::Trace;
pub use volcano::VolcanoSeismic;

/// All built-in generators behind one name, for sweep-style experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// NAMOS lake-buoy trace (fluorometer + thermistors).
    Namos,
    /// Cow-orientation trace (clustered brief changes).
    Cow,
    /// Volcano seismometer trace (low-amplitude oscillation + events).
    Volcano,
    /// Fire-experiment heat-release-rate trace (smooth curve).
    Fire,
    /// Chlorine-concentration plume trace (emergency-response model).
    Chlorine,
}

impl SourceKind {
    /// Generates a trace of `n` tuples with this kind's default settings.
    pub fn generate(self, n: usize, seed: u64) -> Trace {
        match self {
            SourceKind::Namos => NamosBuoy::new().tuples(n).seed(seed).generate(),
            SourceKind::Cow => CowOrientation::new().tuples(n).seed(seed).generate(),
            SourceKind::Volcano => VolcanoSeismic::new().tuples(n).seed(seed).generate(),
            SourceKind::Fire => FireHrr::new().tuples(n).seed(seed).generate(),
            SourceKind::Chlorine => ChlorinePlume::new().tuples(n).seed(seed).generate(),
        }
    }

    /// Generates a trace of `n` tuples and the **arrival** sequence a
    /// filtering node would see under `disorder` — the event-time
    /// companion to [`generate`](Self::generate). The trace stays
    /// ordered (it is the reorder-buffer oracle); the returned vector is
    /// the jittered permutation to actually feed the pipeline.
    pub fn generate_arrivals(
        self,
        n: usize,
        seed: u64,
        disorder: Disorder,
    ) -> (Trace, Vec<gasf_core::tuple::Tuple>) {
        let trace = self.generate(n, seed);
        let arrivals = disorder.apply(&trace);
        (trace, arrivals)
    }

    /// The primary attribute the paper filters on for this source.
    pub fn primary_attr(self) -> &'static str {
        match self {
            SourceKind::Namos => "tmpr4",
            SourceKind::Cow => "e_orient",
            SourceKind::Volcano => "seis",
            SourceKind::Fire => "hrr",
            SourceKind::Chlorine => "chlorine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_kind_generates_all() {
        for kind in [
            SourceKind::Namos,
            SourceKind::Cow,
            SourceKind::Volcano,
            SourceKind::Fire,
            SourceKind::Chlorine,
        ] {
            let t = kind.generate(100, 1);
            assert_eq!(t.len(), 100);
            assert!(t.schema().attr(kind.primary_attr()).is_ok());
        }
    }
}
