//! NAMOS lake-buoy generator (§4.2).
//!
//! Each NAMOS tuple carries a fluorometer reading, six thermistor readings
//! at different depths and some weather attributes, at roughly 100 tuples
//! per second. Every channel follows a plateau-and-ramp model with slowly
//! wandering sensor jitter around a drifting sinusoidal baseline — lake
//! temperature and chlorophyll dwell near a level and move smoothly, which
//! is what makes delta compression with slack effective (see `generate`).
//!
//! ## Knobs
//!
//! * [`NamosBuoy::tuples`] — trace length,
//! * [`NamosBuoy::interval`] — inter-tuple spacing (default 10 ms, the
//!   paper's ~100 Hz),
//! * [`NamosBuoy::seed`] — RNG seed; the same seed always reproduces the
//!   same trace, which every equivalence test in this workspace relies on.

use crate::trace::Trace;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Generator for synthetic NAMOS buoy traces.
///
/// ```rust
/// use gasf_sources::NamosBuoy;
/// let trace = NamosBuoy::new().tuples(500).seed(42).generate();
/// assert_eq!(trace.len(), 500);
/// assert!(trace.schema().attr("fluoro").is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct NamosBuoy {
    tuples: usize,
    interval: Micros,
    seed: u64,
}

impl NamosBuoy {
    /// A generator with the paper's defaults: 10 ms interval, 10 000 tuples.
    pub fn new() -> Self {
        NamosBuoy {
            tuples: 10_000,
            interval: Micros::from_millis(10),
            seed: 0,
        }
    }

    /// Sets the number of tuples to generate.
    pub fn tuples(mut self, n: usize) -> Self {
        self.tuples = n;
        self
    }

    /// Sets the inter-arrival interval.
    pub fn interval(mut self, interval: Micros) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the RNG seed (same seed ⇒ identical trace).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The schema of NAMOS traces: `fluoro`, `tmpr1`–`tmpr6`, `humidity`,
    /// `wind`.
    pub fn schema() -> Schema {
        Schema::new([
            "fluoro", "tmpr1", "tmpr2", "tmpr3", "tmpr4", "tmpr5", "tmpr6", "humidity", "wind",
        ])
    }

    /// Generates the trace.
    ///
    /// Each channel follows a *plateau-and-ramp* model: sensor readings
    /// hover around a level with small measurement jitter (quantisation +
    /// electronics noise), and occasionally ramp over a few samples to a
    /// new level drawn around a slow sinusoidal baseline. That structure —
    /// visible in the NAMOS plots the paper relies on — is what gives
    /// delta-compression filters multi-tuple candidate sets: the reading
    /// dwells within `slack` of a reference for a while before moving on.
    pub fn generate(&self) -> Trace {
        let schema = Self::schema();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4e41_4d4f_53e5_a1b2);
        let noise = Normal::new(0.0, 1.0).expect("valid normal");

        // Per-channel parameters: (baseline, sinus amplitude, period s,
        // plateau jitter, level spread). Jitter is calibrated so that
        // srcStatistics lands near the paper's (fluoro ≈ 0.023,
        // thermistors ≈ 0.02–0.03).
        struct Chan {
            base: f64,
            amp: f64,
            period: f64,
            jitter: f64,
            spread: f64,
            phase: f64,
            level: f64,
            target: f64,
            ramp_left: u32,
            wander: f64,
        }
        let spec: [(f64, f64, f64, f64, f64); 9] = [
            (12.0, 1.2, 40.0, 0.016, 0.30),  // fluoro (chlorophyll proxy)
            (21.0, 0.8, 55.0, 0.014, 0.22),  // tmpr1 (surface)
            (20.5, 0.7, 60.0, 0.015, 0.24),  // tmpr2
            (20.0, 0.6, 65.0, 0.016, 0.25),  // tmpr3
            (19.5, 0.6, 70.0, 0.017, 0.26),  // tmpr4
            (19.0, 0.5, 75.0, 0.014, 0.22),  // tmpr5
            (18.5, 0.5, 80.0, 0.013, 0.20),  // tmpr6 (deepest)
            (55.0, 4.0, 120.0, 0.060, 1.20), // humidity
            (3.0, 1.0, 90.0, 0.050, 0.70),   // wind
        ];
        let mut chans: Vec<Chan> = spec
            .iter()
            .map(|&(base, amp, period, jitter, spread)| Chan {
                base,
                amp,
                period,
                jitter,
                spread,
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
                level: base,
                target: base,
                ramp_left: 0,
                wander: 0.0,
            })
            .collect();

        let mut b = TupleBuilder::new(&schema);
        let mut tuples = Vec::with_capacity(self.tuples);
        for i in 0..self.tuples {
            let ts = Micros(self.interval.as_micros() * (i as u64 + 1));
            let t = ts.as_secs_f64();
            b.at(ts);
            for (ci, ch) in chans.iter_mut().enumerate() {
                if ch.ramp_left > 0 {
                    ch.level += (ch.target - ch.level) / ch.ramp_left as f64;
                    ch.ramp_left -= 1;
                } else if rng.gen_bool(1.0 / 12.0) {
                    // Pick a new level around the drifting baseline and
                    // ramp there over a handful of samples.
                    let baseline =
                        ch.base + ch.amp * (std::f64::consts::TAU * t / ch.period + ch.phase).sin();
                    ch.target = baseline + ch.spread * noise.sample(&mut rng);
                    ch.ramp_left = rng.gen_range(3..9);
                }
                // Sensor jitter wanders slowly (thermal mass + ADC
                // filtering) rather than flickering white: AR(1).
                ch.wander = 0.9 * ch.wander + ch.jitter * noise.sample(&mut rng);
                let v = ch.level + ch.wander;
                let (id, _) = schema.iter().nth(ci).expect("channel within schema");
                b.set_attr(id, v);
            }
            tuples.push(b.build().expect("schema-aligned tuple"));
        }
        Trace::new(schema, tuples).expect("generated stream is ordered")
    }

    /// Generates the trace plus the **arrival** sequence a filtering node
    /// would see under `disorder` (bounded shuffle, jitter, stragglers).
    /// The trace stays event-time-ordered — it is the reorder oracle.
    pub fn generate_arrivals(
        &self,
        disorder: crate::Disorder,
    ) -> (Trace, Vec<gasf_core::tuple::Tuple>) {
        let trace = self.generate();
        let arrivals = disorder.apply(&trace);
        (trace, arrivals)
    }
}

impl Default for NamosBuoy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = NamosBuoy::new().tuples(200).seed(9).generate();
        let b = NamosBuoy::new().tuples(200).seed(9).generate();
        let c = NamosBuoy::new().tuples(200).seed(10).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn interval_and_length() {
        let t = NamosBuoy::new()
            .tuples(50)
            .interval(Micros::from_millis(20))
            .generate();
        assert_eq!(t.len(), 50);
        assert_eq!(t.mean_interval(), Micros::from_millis(20));
    }

    #[test]
    fn src_statistics_in_paper_range() {
        // The paper's deltas for thermistors are ~0.02–0.06; srcStatistics
        // should be the same order of magnitude (0.005–0.1).
        let t = NamosBuoy::new().tuples(5_000).seed(3).generate();
        for attr in ["fluoro", "tmpr2", "tmpr4"] {
            let s = t.stats(attr).unwrap();
            assert!(
                s.mean_abs_delta > 0.005 && s.mean_abs_delta < 0.2,
                "{attr}: srcStatistics {}",
                s.mean_abs_delta
            );
        }
    }

    #[test]
    fn values_stay_physical() {
        let t = NamosBuoy::new().tuples(3_000).seed(5).generate();
        let s = t.stats("tmpr4").unwrap();
        assert!(s.min > 0.0 && s.max < 40.0, "lake water: {s:?}");
    }
}
