//! Disorder injection: turning ordered traces into realistic arrival
//! sequences.
//!
//! Every generator in this crate produces an event-time-ordered
//! [`Trace`]; real deployments deliver those tuples over lossy radio
//! links and store-and-forward relays, so the *arrival* order the
//! filtering node sees is a jittered permutation of event order. A
//! [`Disorder`] spec models that seam deterministically:
//!
//! * **per-tuple delay jitter** — every tuple is delayed by a uniform
//!   random amount in `[0, bound]`, and arrivals are sorted by delayed
//!   time (a *bounded shuffle*: no tuple is displaced by more than
//!   `bound` of event time, exactly the promise a
//!   [`Watermark`](gasf_core::event_time::Watermark) with the same bound
//!   relies on), and
//! * **late stragglers** — optionally, every `straggler_every`-th tuple
//!   is additionally delayed by `straggler_delay` *beyond* the bound, so
//!   it arrives after the watermark passed it and exercises the
//!   [`LatePolicy`](gasf_core::event_time::LatePolicy) paths.
//!
//! The same seed always produces the same arrival sequence, which is
//! what lets `tests/disorder_equivalence.rs` pin "disordered, then
//! reordered by the buffer" against the pre-sorted trace byte for byte.

use crate::trace::Trace;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic disorder spec: bounded shuffle + optional stragglers.
///
/// ```rust
/// use gasf_core::time::Micros;
/// use gasf_sources::{Disorder, NamosBuoy};
///
/// let trace = NamosBuoy::new().tuples(200).seed(7).generate();
/// let arrivals = Disorder::bounded(Micros::from_millis(160))
///     .seed(3)
///     .apply(&trace);
/// assert_eq!(arrivals.len(), trace.len());
/// // Same spec, same trace → same arrival sequence.
/// let again = Disorder::bounded(Micros::from_millis(160)).seed(3).apply(&trace);
/// assert_eq!(arrivals, again);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disorder {
    /// Maximum delivery delay of the bounded shuffle (event time). Zero
    /// keeps the trace in order.
    bound: Micros,
    /// Every n-th tuple becomes a straggler (0 disables stragglers).
    straggler_every: usize,
    /// Extra delay a straggler suffers beyond `bound`.
    straggler_delay: Micros,
    /// RNG seed for the per-tuple jitter.
    seed: u64,
}

impl Disorder {
    /// A bounded shuffle with at most `bound` of displacement, no
    /// stragglers, seed 0.
    pub fn bounded(bound: Micros) -> Self {
        Disorder {
            bound,
            straggler_every: 0,
            straggler_delay: Micros::ZERO,
            seed: 0,
        }
    }

    /// Sets the jitter seed (same seed ⇒ identical arrival sequence).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes every `every`-th tuple a straggler, delayed `delay` beyond
    /// the bound (so it arrives late by construction). `every = 0`
    /// disables stragglers.
    pub fn stragglers(mut self, every: usize, delay: Micros) -> Self {
        self.straggler_every = every;
        self.straggler_delay = delay;
        self
    }

    /// The displacement bound.
    pub fn bound(&self) -> Micros {
        self.bound
    }

    /// Whether the spec produces stragglers.
    pub fn has_stragglers(&self) -> bool {
        self.straggler_every > 0 && self.straggler_delay > Micros::ZERO
    }

    /// Applies the spec to a trace, returning the **arrival** sequence:
    /// the same tuples (event timestamps and source seqs untouched — the
    /// seq is the reorder tiebreak), permuted by delivery delay.
    ///
    /// Each tuple's delivery time is `timestamp + jitter` with jitter
    /// uniform in `[0, bound]` (stragglers add `bound + straggler_delay`
    /// on top); arrivals are stably sorted by `(delivery time, seq)`.
    /// With no stragglers, no tuple is displaced by more than `bound`,
    /// so a reorder buffer with the same bound loses nothing.
    pub fn apply(&self, trace: &Trace) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6469_736f_7264_6572);
        let mut keyed: Vec<(Micros, u64, Tuple)> = trace
            .iter()
            .map(|t| {
                let jitter = if self.bound > Micros::ZERO {
                    Micros(rng.gen_range(0..self.bound.as_micros().saturating_add(1)))
                } else {
                    Micros::ZERO
                };
                let straggle = if self.straggler_every > 0
                    && (t.seq() as usize).is_multiple_of(self.straggler_every)
                    && t.seq() > 0
                {
                    self.bound
                        .checked_add(self.straggler_delay)
                        .unwrap_or(Micros::MAX)
                } else {
                    Micros::ZERO
                };
                let delay = jitter.checked_add(straggle).unwrap_or(Micros::MAX);
                let delivered = t.timestamp().checked_add(delay).unwrap_or(Micros::MAX);
                (delivered, t.seq(), t.clone())
            })
            .collect();
        keyed.sort_by_key(|&(delivered, seq, _)| (delivered, seq));
        keyed.into_iter().map(|(_, _, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NamosBuoy;
    use gasf_core::event_time::{EventTimeConfig, ReorderBuffer};

    fn trace() -> Trace {
        NamosBuoy::new().tuples(300).seed(11).generate()
    }

    #[test]
    fn zero_bound_is_identity() {
        let t = trace();
        let arrivals = Disorder::bounded(Micros::ZERO).apply(&t);
        assert_eq!(arrivals, t.tuples());
    }

    #[test]
    fn deterministic_per_seed() {
        let t = trace();
        let d = Disorder::bounded(Micros::from_millis(100)).seed(5);
        assert_eq!(d.apply(&t), d.apply(&t));
        let other = Disorder::bounded(Micros::from_millis(100))
            .seed(6)
            .apply(&t);
        assert_ne!(d.apply(&t), other, "different seed, different shuffle");
    }

    #[test]
    fn shuffle_actually_disorders() {
        let t = trace();
        let arrivals = Disorder::bounded(Micros::from_millis(100))
            .seed(5)
            .apply(&t);
        assert_ne!(arrivals, t.tuples(), "bound 10 intervals must displace");
        // Same multiset: sorting arrivals by (ts, seq) recovers the trace.
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|x| (x.timestamp(), x.seq()));
        assert_eq!(sorted, t.tuples());
    }

    #[test]
    fn displacement_stays_within_the_bound() {
        let t = trace();
        let bound = Micros::from_millis(80);
        let arrivals = Disorder::bounded(bound).seed(9).apply(&t);
        // The watermark guarantee: feeding arrivals to a buffer with the
        // same bound drops nothing and yields the sorted trace.
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(bound));
        let mut out = Vec::new();
        for a in arrivals {
            assert!(buf.push_into(a, &mut out).is_none(), "never late");
        }
        buf.flush_into(&mut out);
        assert_eq!(out, t.tuples());
    }

    #[test]
    fn stragglers_arrive_late() {
        let t = trace();
        let bound = Micros::from_millis(40);
        let d = Disorder::bounded(bound)
            .seed(2)
            .stragglers(50, Micros::from_millis(500));
        assert!(d.has_stragglers());
        let arrivals = d.apply(&t);
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(bound));
        let mut out = Vec::new();
        let mut late = 0u64;
        for a in arrivals {
            if buf.push_into(a, &mut out).is_some() {
                late += 1;
            }
        }
        buf.flush_into(&mut out);
        assert!(late > 0, "stragglers must be late");
        assert_eq!(buf.late_dropped(), late);
        assert_eq!(out.len() as u64 + late, t.len() as u64);
    }
}
