//! # gasf — group-aware stream filtering, workspace facade
//!
//! This crate re-exports the member crates of the GASF workspace so the
//! examples (and downstream quick starts) can depend on a single name:
//!
//! * [`core`] — tuples, candidate sets, hitting-set solvers, regions,
//!   the [`core::engine::GroupEngine`] two-stage filtering engines and
//!   the multi-threaded [`core::shard::ShardedEngine`],
//! * [`net`] — the overlay topology and tuple-level multicast substrate,
//! * [`solar`] — the Solar-like pub/sub middleware tying engines to the
//!   overlay,
//! * [`sources`] — deterministic synthetic data sources shaped after the
//!   paper's deployments,
//! * [`wire`] — the real-socket side of the transport seam: framed TCP
//!   transport, host layouts and the `gasfctl` deployment tool.
//!
//! See the repository `README.md` for the paper → module map and the
//! workspace layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gasf_core as core;
pub use gasf_net as net;
pub use gasf_solar as solar;
pub use gasf_sources as sources;
pub use gasf_wire as wire;

/// Filter (re)grouping strategies, re-exported at the facade root:
/// deployments drive the live control plane —
/// [`solar::Middleware::regroup`] and the subscribe/unsubscribe/
/// resubscribe lifecycle — without naming the member crate.
pub use gasf_solar::{GroupingStrategy, Partition, SubscriptionHandle};

/// Fault-tolerance artifacts, re-exported at the facade root:
/// deployments persist [`solar::Middleware::checkpoint`]'s snapshot and
/// hand it back to [`solar::Middleware::recover`] after a crash, and
/// inspect overlay self-repair costs, without naming the member crates.
pub use gasf_net::RepairReport;
pub use gasf_solar::MiddlewareSnapshot;
